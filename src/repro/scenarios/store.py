"""Persistent, content-addressed results store for scenario runs and grids.

Every scenario run is already content-addressed: the canonical JSON form of
its :class:`~repro.scenarios.spec.ScenarioSpec` hashes to a stable SHA-256
(:func:`spec_hash`), and the run's own signature is a deterministic function
of ``(spec, seed)``.  This module persists that mapping — ``(spec_hash,
seed) → result payload`` — in a schema-versioned sqlite database so the
platform never executes the same simulation twice:

* :class:`~repro.scenarios.runner.ScenarioRunner` consults the store before
  executing (``run`` and ``run_grid``); a hit returns the stored plain-data
  payload with a byte-identical signature,
* editing one axis value of a 12-cell grid re-executes only the changed
  cells, and an interrupted sweep resumes from its stored cells
  (``scenario grid --resume``),
* ``scenario store ls|gc|show`` manage the database from the CLI and
  ``scenario serve`` (:mod:`repro.scenarios.serve`) exposes it over HTTP.

The store deliberately holds only *plain data* (the JSON payload a
:class:`~repro.scenarios.runner.CellResult` condenses to — metric scalars,
per-round rows, the signature) plus the canonical spec document, never
pickled objects: payloads round-trip exactly through ``json`` (floats keep
their shortest-repr bit pattern), so a cached result renders byte-identically
to a fresh one.

Grid runs are recorded alongside (``grids`` table: sweep hash → ordered cell
keys), which is what lets ``scenario serve`` rebuild a grid's CSV bundle and
heatmap from stored cells without re-running anything.
"""

from __future__ import annotations

import hashlib
import json
import os
import sqlite3
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "ResultsStore",
    "ResultsStoreError",
    "StoredGrid",
    "StoredRun",
    "canonical_json",
    "default_store_path",
    "spec_hash",
    "sweep_hash",
]

#: Bump when the sqlite layout changes; the store refuses databases written
#: by a different schema rather than guessing at migrations.
SCHEMA_VERSION = 1

#: Environment variable naming the default database location.
STORE_ENV_VAR = "REPRO_STORE"

#: Default database path (relative to the working directory) when neither a
#: CLI flag nor :data:`STORE_ENV_VAR` names one.
DEFAULT_STORE_PATH = os.path.join(".repro", "results.sqlite")


class ResultsStoreError(RuntimeError):
    """The results store is unusable (bad schema, unknown key, bad query)."""


def default_store_path() -> str:
    """The store path the CLI uses: ``$REPRO_STORE`` or ``.repro/results.sqlite``."""
    return os.environ.get(STORE_ENV_VAR) or DEFAULT_STORE_PATH


def canonical_json(data: object) -> str:
    """Deterministic JSON rendering: sorted keys, minimal separators.

    Two plain-data trees that compare equal render identically regardless of
    dict insertion order — the property :func:`spec_hash` needs to be stable
    across ``as_dict``/``from_dict`` round trips and JSON files whose authors
    ordered keys differently.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def spec_hash(spec: Union[ScenarioSpec, Mapping[str, object]]) -> str:
    """Content address of a scenario: SHA-256 over the canonical spec JSON.

    Accepts a :class:`ScenarioSpec` or its ``as_dict`` form.  The hash covers
    the *entire* spec (including the seed), so the ``(spec_hash, seed)``
    store key is redundant but self-describing: the seed column is what
    ``store ls`` and the serve API group by.
    """
    tree = spec.as_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
    return hashlib.sha256(canonical_json(tree).encode("utf-8")).hexdigest()


def sweep_hash(sweep) -> str:
    """Content address of a parameter grid: SHA-256 over its canonical JSON."""
    return hashlib.sha256(canonical_json(sweep.as_dict()).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class StoredRun:
    """One stored scenario result (the plain-data payload plus its key)."""

    spec_hash: str
    seed: int
    scenario: str
    signature: str
    payload: Dict[str, object]
    created_at: float
    last_used_at: float
    hits: int

    def row(self) -> Dict[str, object]:
        """One ``store ls`` table row."""
        return {
            "spec_hash": self.spec_hash[:12],
            "seed": self.seed,
            "scenario": self.scenario,
            "rounds": self.payload.get("rounds_completed", ""),
            "accuracy": self.payload.get("final_accuracy", ""),
            "signature": self.signature[:12],
            "hits": self.hits,
            "stored_at": time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.created_at)),
        }


@dataclass(frozen=True)
class StoredGrid:
    """One recorded grid run: its sweep hash plus ordered cell keys."""

    sweep_hash: str
    name: str
    axes: List[str]
    cells: List[Dict[str, object]]
    created_at: float
    updated_at: float

    def row(self) -> Dict[str, object]:
        """One ``store ls --grids`` table row."""
        return {
            "sweep_hash": self.sweep_hash[:12],
            "name": self.name,
            "cells": len(self.cells),
            "axes": " x ".join(self.axes),
            "updated_at": time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(self.updated_at)),
        }


#: How long a writer waits on a locked database before erroring (ms).
#: Generous: store writes are small (one JSON payload per commit), so any
#: contention clears in milliseconds — the timeout only bites on a wedged
#: peer holding the lock.
BUSY_TIMEOUT_MS = 10_000

_SCHEMA_STATEMENTS = (
    """
    CREATE TABLE IF NOT EXISTS store_meta (
        key   TEXT PRIMARY KEY,
        value TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS runs (
        spec_hash    TEXT    NOT NULL,
        seed         INTEGER NOT NULL,
        scenario     TEXT    NOT NULL,
        signature    TEXT    NOT NULL,
        spec_json    TEXT    NOT NULL,
        payload_json TEXT    NOT NULL,
        created_at   REAL    NOT NULL,
        last_used_at REAL    NOT NULL,
        hits         INTEGER NOT NULL DEFAULT 0,
        PRIMARY KEY (spec_hash, seed)
    )
    """,
    "CREATE INDEX IF NOT EXISTS runs_by_scenario ON runs(scenario)",
    """
    CREATE TABLE IF NOT EXISTS grids (
        sweep_hash TEXT PRIMARY KEY,
        name       TEXT NOT NULL,
        axes_json  TEXT NOT NULL,
        cells_json TEXT NOT NULL,
        created_at REAL NOT NULL,
        updated_at REAL NOT NULL
    )
    """,
)


class ResultsStore:
    """A schema-versioned sqlite results store, safe for threaded readers.

    All operations serialize through one internal lock (the serve mode's
    ``ThreadingHTTPServer`` shares a single store across request threads);
    every write commits immediately, so a killed process keeps everything
    stored up to its last completed cell — the property ``--resume`` builds
    on.

    Use as a context manager or call :meth:`close`; a store opened on a
    fresh path creates the database (and its parent directory) eagerly, and
    a database written by a different schema version raises
    :class:`ResultsStoreError` instead of being reinterpreted.
    """

    def __init__(self, path: Union[str, os.PathLike] = DEFAULT_STORE_PATH) -> None:
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.RLock()
        self._connection: Optional[sqlite3.Connection] = sqlite3.connect(
            self.path, check_same_thread=False
        )
        self._connection.row_factory = sqlite3.Row
        # Concurrent-writer posture: WAL lets readers (serve mode, a
        # --resume consult) proceed while another process commits a cell,
        # and the busy timeout turns writer-vs-writer "database is locked"
        # races (parallel grids, sharded runs sharing one store) into short
        # waits instead of hard errors.  journal_mode returns the mode
        # actually in effect — some filesystems refuse WAL — so the
        # fallback is whatever sqlite kept, with the timeout still applied.
        try:
            self._connection.execute("PRAGMA journal_mode=WAL").fetchone()
        except sqlite3.OperationalError:  # pragma: no cover - fs dependent
            pass
        self._connection.execute(f"PRAGMA busy_timeout={BUSY_TIMEOUT_MS}")
        self._initialize()

    # ----------------------------------------------------------- lifecycle

    def _initialize(self) -> None:
        with self._lock, self._db() as db:
            for statement in _SCHEMA_STATEMENTS:
                db.execute(statement)
            row = db.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                db.execute(
                    "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row["value"]) != SCHEMA_VERSION:
                raise ResultsStoreError(
                    f"{self.path} uses store schema {row['value']}, this build "
                    f"expects {SCHEMA_VERSION}; move the file aside or gc --all it"
                )
            db.commit()

    def _db(self) -> sqlite3.Connection:
        if self._connection is None:
            raise ResultsStoreError(f"store {self.path} is closed")
        return self._connection

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            if self._connection is not None:
                self._connection.close()
                self._connection = None

    def __enter__(self) -> "ResultsStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ---------------------------------------------------------------- runs

    def get_run(self, spec_hash: str, seed: int) -> Optional[StoredRun]:
        """Look one run up by its content address; bumps the hit counter."""
        with self._lock:
            db = self._db()
            row = db.execute(
                "SELECT * FROM runs WHERE spec_hash = ? AND seed = ?",
                (spec_hash, int(seed)),
            ).fetchone()
            if row is None:
                return None
            db.execute(
                "UPDATE runs SET hits = hits + 1, last_used_at = ? "
                "WHERE spec_hash = ? AND seed = ?",
                (time.time(), spec_hash, int(seed)),
            )
            db.commit()
            return self._run_from_row(row)

    def put_run(
        self,
        spec_hash: str,
        seed: int,
        spec: Union[ScenarioSpec, Mapping[str, object]],
        signature: str,
        payload: Mapping[str, object],
    ) -> None:
        """Insert or replace one run's payload under ``(spec_hash, seed)``.

        Commits immediately — a crash right after this call still keeps the
        cell, which is what lets interrupted grids resume.
        """
        tree = spec.as_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
        now = time.time()
        with self._lock:
            db = self._db()
            db.execute(
                "INSERT OR REPLACE INTO runs (spec_hash, seed, scenario, signature,"
                " spec_json, payload_json, created_at, last_used_at, hits)"
                " VALUES (?, ?, ?, ?, ?, ?, ?, ?, 0)",
                (
                    spec_hash,
                    int(seed),
                    str(tree.get("name", "")),
                    signature,
                    canonical_json(tree),
                    # NOT canonical/sorted: the payload's key order is the
                    # rendered column order (format_table uses first
                    # appearance), and stored→rendered must be byte-identical
                    # to fresh→rendered.
                    json.dumps(payload),
                    now,
                    now,
                ),
            )
            db.commit()

    def runs(self, scenario: Optional[str] = None) -> List[StoredRun]:
        """Stored runs, newest first (optionally filtered by scenario name)."""
        query = "SELECT * FROM runs"
        params: tuple = ()
        if scenario is not None:
            query += " WHERE scenario = ?"
            params = (scenario,)
        query += " ORDER BY created_at DESC, spec_hash, seed"
        with self._lock:
            rows = self._db().execute(query, params).fetchall()
        return [self._run_from_row(row) for row in rows]

    def run_spec(self, spec_hash: str, seed: int) -> Dict[str, object]:
        """The canonical spec document stored with a run."""
        with self._lock:
            row = self._db().execute(
                "SELECT spec_json FROM runs WHERE spec_hash = ? AND seed = ?",
                (spec_hash, int(seed)),
            ).fetchone()
        if row is None:
            raise ResultsStoreError(f"no stored run {spec_hash[:12]}…/seed {seed}")
        return json.loads(row["spec_json"])

    def resolve_run(self, prefix: str, seed: Optional[int] = None) -> StoredRun:
        """Find exactly one run by spec-hash prefix (CLI ``store show``)."""
        with self._lock:
            rows = self._db().execute(
                "SELECT * FROM runs WHERE spec_hash LIKE ? ORDER BY seed",
                (prefix + "%",),
            ).fetchall()
        matches = [self._run_from_row(row) for row in rows]
        if seed is not None:
            matches = [run for run in matches if run.seed == int(seed)]
        if not matches:
            raise ResultsStoreError(f"no stored run matches {prefix!r}"
                                    + (f" with seed {seed}" if seed is not None else ""))
        if len(matches) > 1:
            keys = ", ".join(f"{m.spec_hash[:12]}/seed={m.seed}" for m in matches[:6])
            raise ResultsStoreError(
                f"{prefix!r} is ambiguous ({len(matches)} matches: {keys}"
                + ("…" if len(matches) > 6 else "") + "); add more digits or --seed"
            )
        return matches[0]

    @staticmethod
    def _run_from_row(row: sqlite3.Row) -> StoredRun:
        return StoredRun(
            spec_hash=row["spec_hash"],
            seed=int(row["seed"]),
            scenario=row["scenario"],
            signature=row["signature"],
            payload=json.loads(row["payload_json"]),
            created_at=float(row["created_at"]),
            last_used_at=float(row["last_used_at"]),
            hits=int(row["hits"]),
        )

    # --------------------------------------------------------------- grids

    def record_grid(
        self,
        sweep_hash: str,
        name: str,
        axes: Sequence[str],
        cells: Sequence[Mapping[str, object]],
    ) -> None:
        """Insert or refresh one grid run's cell index.

        ``cells`` entries carry ``{"index", "coordinates", "spec_hash",
        "seed", "signature"}`` — enough for the serve API to rebuild the
        whole CSV bundle from the ``runs`` table without re-deriving the
        sweep expansion.
        """
        now = time.time()
        with self._lock:
            db = self._db()
            existing = db.execute(
                "SELECT created_at FROM grids WHERE sweep_hash = ?", (sweep_hash,)
            ).fetchone()
            created = float(existing["created_at"]) if existing is not None else now
            db.execute(
                "INSERT OR REPLACE INTO grids (sweep_hash, name, axes_json,"
                " cells_json, created_at, updated_at) VALUES (?, ?, ?, ?, ?, ?)",
                (
                    sweep_hash,
                    name,
                    json.dumps(list(axes)),
                    json.dumps([dict(cell) for cell in cells]),
                    created,
                    now,
                ),
            )
            db.commit()

    def grids(self) -> List[StoredGrid]:
        """Recorded grids, newest first."""
        with self._lock:
            rows = self._db().execute(
                "SELECT * FROM grids ORDER BY updated_at DESC, sweep_hash"
            ).fetchall()
        return [self._grid_from_row(row) for row in rows]

    def resolve_grid(self, prefix: str) -> StoredGrid:
        """Find exactly one grid by sweep-hash prefix or exact name."""
        with self._lock:
            rows = self._db().execute(
                "SELECT * FROM grids WHERE sweep_hash LIKE ? OR name = ?"
                " ORDER BY updated_at DESC",
                (prefix + "%", prefix),
            ).fetchall()
        if not rows:
            raise ResultsStoreError(f"no recorded grid matches {prefix!r}")
        if len(rows) > 1:
            keys = ", ".join(f"{row['name']} ({row['sweep_hash'][:12]})" for row in rows[:6])
            raise ResultsStoreError(
                f"{prefix!r} is ambiguous ({len(rows)} grids: {keys}); use the hash"
            )
        return self._grid_from_row(rows[0])

    @staticmethod
    def _grid_from_row(row: sqlite3.Row) -> StoredGrid:
        return StoredGrid(
            sweep_hash=row["sweep_hash"],
            name=row["name"],
            axes=json.loads(row["axes_json"]),
            cells=json.loads(row["cells_json"]),
            created_at=float(row["created_at"]),
            updated_at=float(row["updated_at"]),
        )

    # ------------------------------------------------------------------ gc

    def gc(
        self,
        older_than_s: Optional[float] = None,
        scenario: Optional[str] = None,
        delete_all: bool = False,
        vacuum: bool = True,
    ) -> Dict[str, int]:
        """Delete stored runs (and grids left referencing them); returns counts.

        Selection is by ``last_used_at`` age and/or scenario name;
        ``delete_all=True`` empties the store.  Grids whose cell keys no
        longer all resolve against the ``runs`` table are dropped too — a
        recorded grid must always be fully rebuildable.
        """
        if not delete_all and older_than_s is None and scenario is None:
            raise ResultsStoreError(
                "gc needs a selector: older_than_s, scenario, or delete_all=True"
            )
        clauses: List[str] = []
        params: List[object] = []
        if not delete_all:
            if older_than_s is not None:
                clauses.append("last_used_at < ?")
                params.append(time.time() - float(older_than_s))
            if scenario is not None:
                clauses.append("scenario = ?")
                params.append(scenario)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        with self._lock:
            db = self._db()
            removed_runs = db.execute(
                f"DELETE FROM runs{where}", tuple(params)
            ).rowcount
            removed_grids = 0
            for row in db.execute("SELECT sweep_hash, cells_json FROM grids").fetchall():
                cells = json.loads(row["cells_json"])
                complete = all(
                    db.execute(
                        "SELECT 1 FROM runs WHERE spec_hash = ? AND seed = ?",
                        (cell["spec_hash"], int(cell["seed"])),
                    ).fetchone()
                    is not None
                    for cell in cells
                )
                if not complete:
                    db.execute(
                        "DELETE FROM grids WHERE sweep_hash = ?", (row["sweep_hash"],)
                    )
                    removed_grids += 1
            db.commit()
            if vacuum:
                db.execute("VACUUM")
        return {"runs": int(removed_runs), "grids": int(removed_grids)}

    def delete_run(self, spec_hash: str, seed: int) -> bool:
        """Delete one stored run; returns True when it existed."""
        with self._lock:
            db = self._db()
            removed = db.execute(
                "DELETE FROM runs WHERE spec_hash = ? AND seed = ?",
                (spec_hash, int(seed)),
            ).rowcount
            db.commit()
        return bool(removed)

    # ----------------------------------------------------------------- misc

    def stats(self) -> Dict[str, object]:
        """Headline numbers for ``store ls`` and the serve health endpoint."""
        with self._lock:
            db = self._db()
            runs = db.execute("SELECT COUNT(*) AS n FROM runs").fetchone()["n"]
            grids = db.execute("SELECT COUNT(*) AS n FROM grids").fetchone()["n"]
            hits = db.execute("SELECT COALESCE(SUM(hits), 0) AS n FROM runs").fetchone()["n"]
        size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
        return {
            "path": self.path,
            "schema_version": SCHEMA_VERSION,
            "runs": int(runs),
            "grids": int(grids),
            "total_hits": int(hits),
            "size_bytes": int(size),
        }
