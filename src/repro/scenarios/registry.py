"""Named scenario registry.

The built-ins cover the workload families the ROADMAP asks for — a control
run, churn-dominated fleets, stragglers under deadlines, degraded WANs,
bridged multi-region deployments and flash-crowd arrivals — each small
enough to run in CI in seconds.  All of them are plain
:class:`~repro.scenarios.spec.ScenarioSpec` values: ``get_scenario`` hands
back a fresh spec, so callers can ``with_seed``/``dataclasses.replace``
without affecting the registry.

Event times are *simulated* seconds on the experiment timeline (rounds for
these small models span a few hundred simulated milliseconds each; the
degraded-WAN scenario stretches that to seconds).

Register custom scenarios with :func:`register_scenario`, or skip the
registry entirely and feed :class:`ScenarioSpec` values (e.g. loaded from
JSON via ``ScenarioSpec.from_dict``) straight to the runner.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List

from repro.scenarios.spec import (
    FaultSpec,
    FleetSpec,
    NetworkSpec,
    ScenarioSpec,
    TopologySpec,
    TrainingSpec,
)
from repro.sim.events import ChurnEvent

__all__ = ["get_scenario", "register_scenario", "scenario_names", "scenario_summaries"]

_REGISTRY: Dict[str, Callable[[], ScenarioSpec]] = {}


def register_scenario(builder: Callable[[], ScenarioSpec], name: str = "") -> str:
    """Add a scenario builder to the registry; returns the registered name.

    The builder is called once immediately to validate the spec and pin the
    name (``name`` overrides the spec's own).  Re-registering a name replaces
    the previous builder.

    >>> from repro.scenarios import ScenarioSpec, get_scenario, register_scenario
    >>> register_scenario(lambda: ScenarioSpec(name="my-workload", seed=3))
    'my-workload'
    >>> get_scenario("my-workload").seed
    3
    """
    spec = builder()
    registered = name or spec.name
    _REGISTRY[registered] = builder
    return registered


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> ScenarioSpec:
    """Return a fresh spec for ``name``; raises ``KeyError`` with the options."""
    builder = _REGISTRY.get(name)
    if builder is None:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        )
    return builder()


def scenario_summaries() -> List[Dict[str, object]]:
    """One row per registered scenario (the ``scenario list`` table)."""
    rows: List[Dict[str, object]] = []
    for name in scenario_names():
        spec = get_scenario(name)
        rows.append(
            {
                "name": name,
                "clients": spec.fleet.num_clients,
                "rounds": spec.training.rounds,
                "regions": spec.topology.regions,
                "churn_events": len(spec.churn),
                "faults": len(spec.faults),
                "description": spec.description,
            }
        )
    return rows


# ------------------------------------------------------------------ built-ins


def _baseline() -> ScenarioSpec:
    return ScenarioSpec(
        name="baseline",
        description="control run: stable laptop fleet, no churn, no faults",
        seed=42,
        fleet=FleetSpec(num_clients=6),
        training=TrainingSpec(rounds=3),
    )


def _heavy_churn() -> ScenarioSpec:
    return ScenarioSpec(
        name="heavy-churn",
        description="clients crash every round (incl. via fault plan) and return",
        seed=42,
        fleet=FleetSpec(num_clients=8),
        training=TrainingSpec(rounds=4, round_deadline_s=5.0),
        churn=(
            ChurnEvent(time=0.60, action="leave", client_id="client_007",
                       detail="battery died mid-round"),
            ChurnEvent(time=1.00, action="leave", client_id="client_006",
                       detail="moved out of range"),
            ChurnEvent(time=1.20, action="reconnect", client_id="client_007",
                       detail="battery swapped"),
        ),
        faults=(
            FaultSpec(kind="client_crash", start_s=0.30, duration_s=0.40,
                      clients=("client_005",), rejoin=True,
                      detail="process OOM-killed, container restarts"),
        ),
    )


def _straggler_heavy() -> ScenarioSpec:
    return ScenarioSpec(
        name="straggler-heavy",
        description="slow-link windows push uploads past the round deadline",
        seed=42,
        fleet=FleetSpec(
            num_clients=8,
            tier_mix={"laptop": 0.4, "phone": 0.4, "rpi": 0.2},
        ),
        topology=TopologySpec(role_policy="memory_aware"),
        training=TrainingSpec(rounds=4, round_deadline_s=0.35),
        churn=(
            ChurnEvent(time=2.0, action="reconnect", client_id="client_002",
                       detail="congestion cleared, device returns"),
        ),
        faults=(
            FaultSpec(kind="client_slow", start_s=1.0, duration_s=1.2,
                      clients=("client_002", "client_005"), factor=0.02,
                      latency_add_s=0.05,
                      detail="background sync saturates the uplink"),
        ),
    )


def _degraded_wan() -> ScenarioSpec:
    return ScenarioSpec(
        name="degraded-wan",
        description="high-latency lossy WAN plus a broker slowdown window",
        seed=42,
        fleet=FleetSpec(num_clients=6),
        network=NetworkSpec(latency_scale=50.0, bandwidth_scale=0.05,
                            jitter_s=0.01, loss_rate=0.02),
        training=TrainingSpec(rounds=3, round_deadline_s=30.0),
        faults=(
            FaultSpec(kind="broker_slowdown", start_s=1.5, duration_s=3.0,
                      factor=500.0, detail="co-located batch job on the broker host"),
            FaultSpec(kind="link_degradation", start_s=6.5, duration_s=2.5,
                      clients=("client_001", "client_004"), factor=0.2,
                      latency_add_s=0.25, detail="cross-traffic on the last mile"),
        ),
    )


def _degraded_wan_int8() -> ScenarioSpec:
    """degraded-wan with int8-quantized updates: the bytes-vs-accuracy probe.

    Identical WAN conditions and fault plan to ``degraded-wan``; the only
    change is the update codec, so diffing the two scenarios' reports
    isolates what 8-bit quantization buys (wire bytes, ``messaging_s``) and
    costs (accuracy) under degraded transport.
    """
    base = _degraded_wan()
    return dataclasses.replace(
        base,
        name="degraded-wan-int8",
        description="degraded-wan with int8-quantized update wire (bytes vs accuracy)",
        training=dataclasses.replace(base.training, update_codec="int8"),
    )


def _bridged_multi_region() -> ScenarioSpec:
    return ScenarioSpec(
        name="bridged-multi-region",
        description="three bridged regional brokers, clients spread round-robin",
        seed=42,
        fleet=FleetSpec(num_clients=9),
        topology=TopologySpec(regions=3),
        training=TrainingSpec(rounds=3),
    )


def _flash_crowd() -> ScenarioSpec:
    return ScenarioSpec(
        name="flash-crowd",
        description="half the fleet joins mid-session in one burst",
        seed=42,
        fleet=FleetSpec(num_clients=10, initial_clients=5),
        training=TrainingSpec(rounds=4, round_deadline_s=5.0),
        churn=tuple(
            ChurnEvent(time=0.40, action="join", client_id=f"client_{index:03d}",
                       detail="flash-crowd arrival")
            for index in range(5, 10)
        ),
    )


def _round2_blackout() -> ScenarioSpec:
    # Round-anchored fault windows: both faults open relative to the moment
    # the lifecycle enters round 2's collecting phase, so the spec survives
    # deadline/fleet changes that would shift the wall clock under a
    # wall-anchored plan.
    return ScenarioSpec(
        name="round2-blackout",
        description="round-anchored blackout: links and broker degrade while round 2 collects",
        seed=42,
        fleet=FleetSpec(num_clients=6),
        training=TrainingSpec(rounds=4, round_deadline_s=5.0),
        faults=(
            FaultSpec(kind="link_degradation", round=2, phase="collecting",
                      duration_s=0.4, clients=("client_001", "client_004"),
                      factor=0.05, latency_add_s=0.05,
                      detail="regional backhaul outage opens with round 2"),
            FaultSpec(kind="broker_slowdown", round=2, phase="collecting",
                      start_s=0.05, duration_s=0.3, factor=40.0,
                      detail="co-located batch job lands mid-blackout"),
        ),
    )


def _mid_round_flash_crowd() -> ScenarioSpec:
    # Mid-round admission: the joins land while round 0's uploads are still
    # in flight; the coordinator folds each joiner into the live topology and
    # re-issues the grown aggregators' expected-contribution counts, and the
    # harness triggers the joiner's first upload once its set_role arrives.
    return ScenarioSpec(
        name="mid-round-flash-crowd",
        description="half the fleet joins mid-round; admission folds them into the live topology",
        seed=42,
        fleet=FleetSpec(num_clients=10, initial_clients=5, admission="mid_round"),
        training=TrainingSpec(rounds=4, round_deadline_s=5.0),
        churn=tuple(
            ChurnEvent(time=0.085 + 0.010 * (index - 5), action="join",
                       client_id=f"client_{index:03d}",
                       detail="flash-crowd arrival mid-round")
            for index in range(5, 10)
        ),
    )


for _builder in (
    _baseline,
    _heavy_churn,
    _straggler_heavy,
    _degraded_wan,
    _degraded_wan_int8,
    _bridged_multi_region,
    _flash_crowd,
    _round2_blackout,
    _mid_round_flash_crowd,
):
    register_scenario(_builder)
