"""Client-side role arbiter.

The role arbiter (paper §III.B.2) governs what a client does in the current
round of each session it participates in: whether it should accept incoming
model parameters (aggregator roles), how many contributions to expect, and
where to send its own output (a parent aggregator's params topic, or the
parameter server when the client is the root aggregator).

It also performs the topic bookkeeping of role changes (paper Fig. 6): on a
role update it reports which role topics to unsubscribe from and which to
subscribe to, so that only the affected client touches its subscriptions while
every other client keeps its existing topics — the core benefit the paper
attributes to the publish/subscribe design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import RoleError
from repro.core.messages import RoleAssignment
from repro.core.roles import Role
from repro.core.topics import aggregator_params_topic

__all__ = ["RoleArbiter", "RoleState", "TopicChange"]


@dataclass(frozen=True)
class TopicChange:
    """Subscription changes implied by a role update."""

    subscribe: Tuple[str, ...] = ()
    unsubscribe: Tuple[str, ...] = ()

    @property
    def is_noop(self) -> bool:
        """Whether the role update requires no topic changes."""
        return not self.subscribe and not self.unsubscribe


@dataclass
class RoleState:
    """The arbiter's view of one session's current role."""

    session_id: str
    role: Role = Role.IDLE
    round_index: int = -1
    parent_id: Optional[str] = None
    expected_contributions: int = 0
    children: List[str] = field(default_factory=list)
    level: int = 0
    params_topic: Optional[str] = None

    @property
    def is_root(self) -> bool:
        """Whether this client is the root aggregator for the session."""
        return self.role.aggregates and self.parent_id is None


class RoleArbiter:
    """Tracks per-session roles for one client and derives topic changes."""

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self._states: Dict[str, RoleState] = {}
        self.role_changes = 0

    # -------------------------------------------------------------- accessors

    def sessions(self) -> List[str]:
        """Sessions the arbiter currently tracks (sorted)."""
        return sorted(self._states)

    def state(self, session_id: str) -> RoleState:
        """Role state for ``session_id``; raises if the session is unknown."""
        state = self._states.get(session_id)
        if state is None:
            raise RoleError(f"client {self.client_id!r} has no role state for session {session_id!r}")
        return state

    def role(self, session_id: str) -> Role:
        """Current role in ``session_id`` (IDLE when unknown)."""
        state = self._states.get(session_id)
        return state.role if state is not None else Role.IDLE

    def has_session(self, session_id: str) -> bool:
        """Whether the arbiter tracks ``session_id``."""
        return session_id in self._states

    def expects_contributions(self, session_id: str) -> int:
        """How many peer contributions the client should await this round."""
        return self.state(session_id).expected_contributions

    def forwarding_target(self, session_id: str) -> Optional[str]:
        """Parent aggregator id to forward results to (None = parameter server)."""
        return self.state(session_id).parent_id

    # ---------------------------------------------------------------- updates

    def ensure_session(self, session_id: str) -> RoleState:
        """Create an IDLE role state for a newly joined session."""
        if session_id not in self._states:
            self._states[session_id] = RoleState(session_id=session_id)
        return self._states[session_id]

    def apply_assignment(self, assignment: RoleAssignment) -> TopicChange:
        """Apply a coordinator ``set_role`` instruction.

        Returns the topic changes the owning client must perform.  A client
        that becomes an aggregator must subscribe to its own params topic; a
        client that stops aggregating must unsubscribe from it (paper Fig. 6's
        unsubscribe/subscribe exchange).
        """
        if assignment.client_id != self.client_id:
            raise RoleError(
                f"assignment addressed to {assignment.client_id!r} applied on {self.client_id!r}"
            )
        new_role = assignment.role_enum
        session_id = assignment.session_id
        previous = self._states.get(session_id)
        old_topic = previous.params_topic if previous is not None else None
        old_role = previous.role if previous is not None else Role.IDLE

        new_topic = (
            aggregator_params_topic(session_id, self.client_id) if new_role.aggregates else None
        )
        state = RoleState(
            session_id=session_id,
            role=new_role,
            round_index=assignment.round_index,
            parent_id=assignment.parent_id,
            expected_contributions=assignment.expected_contributions,
            children=list(assignment.children),
            level=assignment.level,
            params_topic=new_topic,
        )
        self._states[session_id] = state
        if old_role != new_role:
            self.role_changes += 1

        subscribe: List[str] = []
        unsubscribe: List[str] = []
        if new_topic and new_topic != old_topic:
            subscribe.append(new_topic)
        if old_topic and old_topic != new_topic:
            unsubscribe.append(old_topic)
        return TopicChange(subscribe=tuple(subscribe), unsubscribe=tuple(unsubscribe))

    def reset_role(self, session_id: str) -> TopicChange:
        """Drop back to IDLE for ``session_id`` (the ``reset_role`` message)."""
        previous = self._states.get(session_id)
        if previous is None:
            return TopicChange()
        old_topic = previous.params_topic
        if previous.role != Role.IDLE:
            self.role_changes += 1
        self._states[session_id] = RoleState(session_id=session_id)
        if old_topic:
            return TopicChange(unsubscribe=(old_topic,))
        return TopicChange()

    def drop_session(self, session_id: str) -> TopicChange:
        """Forget a session entirely (session terminated)."""
        change = self.reset_role(session_id)
        self._states.pop(session_id, None)
        return change
