"""Model aggregation strategies.

The aggregation pipeline on an SDFLMQ client reduces a set of peer model state
dicts into one.  The paper's evaluation uses FedAvg; the framework is
explicitly designed for pluggable aggregation methods ("this class includes
various techniques to process global model updates", §III.B.2), so this module
ships several standard robust alternatives as well:

* :class:`FedAvg` — sample-count-weighted mean (McMahan et al.);
* :class:`UniformAverage` — unweighted mean;
* :class:`CoordinateMedian` — element-wise median (robust to a minority of
  corrupted updates);
* :class:`TrimmedMean` — element-wise mean after trimming the extreme values;
* :class:`FedAvgMomentum` — server momentum applied on top of FedAvg
  (FedAvgM), useful under strong non-IID skew.

The mean-family strategies (FedAvg, UniformAverage, FedAvgM) reduce with a
*streaming* in-place weighted accumulation: one preallocated ``float64``
accumulator the size of the model, into which each contribution's leaves are
multiply-added in roster order — no ``(num_models, num_parameters)`` matrix
is ever built, so aggregating K contributions needs O(D) scratch instead of
O(K·D).  The order-sensitive robust strategies (median, trimmed mean) still
stack the matrix, which their element-wise sorts genuinely need.  Either
way the inner loops stay in BLAS/ufuncs (HPC guide), and the accumulation
order is fixed by the contribution sequence, so results are deterministic.

Hierarchical composition: FedAvg composes exactly (the weighted mean of
weighted means with summed weights equals the global weighted mean), which is
what allows SDFLMQ's multi-level aggregation to produce the same global model
a central server would.  The robust strategies do *not* compose exactly; they
are primarily intended for the first aggregation level (and the composition
error is part of what the aggregation ablation bench measures).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import AggregationError
from repro.ml.state import StateDict, flatten_state_dict, state_dict_nbytes, unflatten_state_dict
from repro.utils.validation import require_in_range, require_positive

__all__ = [
    "ModelContribution",
    "ContributionBuffer",
    "AggregationStrategy",
    "FedAvg",
    "UniformAverage",
    "CoordinateMedian",
    "TrimmedMean",
    "FedAvgMomentum",
    "get_aggregator",
    "available_aggregators",
]


class ModelContribution:
    """One model update received by an aggregator.

    Attributes
    ----------
    state:
        The contributed parameters.
    weight:
        Aggregation weight; by convention the number of training samples that
        produced the update.  Aggregators forward the *sum* of their inputs'
        weights upstream so that hierarchical FedAvg stays exact.
    sender_id:
        Contributing client (or lower-level aggregator) id.
    round_index:
        FL round the contribution belongs to.
    epoch:
        Restart epoch the contribution was sent under (0 until the round's
        first mid-round restart).  An aggregator recovering from a restart
        clears only contributions with an *older* epoch, so a re-send that
        raced ahead of the aggregator's own restart notice survives.
    nbytes:
        Total byte size of ``state``, computed once at construction.  Buffer
        accounting (add/replace/release paths) charges and releases this
        cached value instead of re-walking the full state dict on every
        operation.
    """

    __slots__ = ("state", "weight", "sender_id", "round_index", "epoch", "nbytes")

    def __init__(
        self,
        state: StateDict,
        weight: float = 1.0,
        sender_id: str = "?",
        round_index: int = 0,
        epoch: int = 0,
    ) -> None:
        if weight <= 0:
            raise AggregationError(f"contribution weight must be positive, got {weight}")
        self.state = state
        self.weight = float(weight)
        self.sender_id = sender_id
        self.round_index = int(round_index)
        self.epoch = int(epoch)
        self.nbytes = state_dict_nbytes(state)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ModelContribution(sender={self.sender_id!r}, weight={self.weight}, "
            f"round={self.round_index}, epoch={self.epoch})"
        )


class ContributionBuffer:
    """Aggregation inbox for one (client, session) pair.

    The buffer subscribes to the round lifecycle's ordering rules rather than
    re-implementing them: callers pass the epoch floor from their
    :class:`~repro.core.rounds.ClientRoundView`, and the buffer enforces the
    invariants that keep hierarchical FedAvg exact under failure recovery —

    * contributions stamped with an epoch below the floor are refused
      (pre-restart leftovers whose senders will re-send or were dropped),
    * at most one contribution per (sender, round) is held: a re-send after a
      round restart *replaces* the sender's previous update, and
    * every byte of *peer* state held is charged against the owner's memory
      through the :class:`~repro.sim.resources.ResourceAccountant` and
      released exactly once — the owner's own update enters uncharged, so
      releases must never be derived from the raw buffered total.
    """

    def __init__(self, owner_id: str, resources: Optional[object] = None) -> None:
        self.owner_id = owner_id
        self.resources = resources
        self.pending: List[ModelContribution] = []
        self.buffered_bytes = 0

    def __len__(self) -> int:
        return len(self.pending)

    def charged_nbytes(self, contributions: Sequence[ModelContribution]) -> int:
        """Bytes of ``contributions`` that were charged to the accountant.

        Only peer contributions are allocated against the owner's memory; its
        own update enters the buffer uncharged.
        """
        return sum(c.nbytes for c in contributions if c.sender_id != self.owner_id)

    def _release(self, nbytes: int) -> None:
        if self.resources is not None and nbytes:
            self.resources.release(self.owner_id, nbytes)

    def add(self, contribution: ModelContribution, min_epoch: int, charge_memory: bool) -> bool:
        """Buffer one contribution; returns False when it is stale.

        A contribution below ``min_epoch`` was sent before a restart the owner
        has already processed — buffering it would let a superseded update
        leak into the restarted round.
        """
        if contribution.epoch < min_epoch:
            return False
        for index, existing in enumerate(self.pending):
            if (
                existing.sender_id == contribution.sender_id
                and existing.round_index == contribution.round_index
            ):
                self.buffered_bytes -= existing.nbytes
                self._release(self.charged_nbytes([existing]))
                del self.pending[index]
                break
        self.pending.append(contribution)
        nbytes = contribution.nbytes
        self.buffered_bytes += nbytes
        if charge_memory and self.resources is not None:
            self.resources.allocate(self.owner_id, nbytes)
        return True

    def drop_stale_epochs(self, epoch: int) -> int:
        """Drop contributions older than ``epoch`` (a processed restart)."""
        if not self.pending:
            return 0
        kept = [c for c in self.pending if c.epoch >= epoch]
        dropped = [c for c in self.pending if c.epoch < epoch]
        self.pending[:] = kept
        self.buffered_bytes = sum(c.nbytes for c in kept)
        self._release(self.charged_nbytes(dropped))
        return len(dropped)

    def take(self, round_index: int, expected: int) -> Optional[List[ModelContribution]]:
        """Pop the round's aggregation batch once the trigger count is met.

        Returns ``None`` while fewer than ``expected`` contributions for
        ``round_index`` are held.  Contributions from earlier rounds
        (restarted and already superseded) are garbage-collected on a
        successful take; later rounds' early arrivals stay buffered.
        """
        eligible = [c for c in self.pending if c.round_index == round_index]
        if expected == 0 or len(eligible) < expected:
            return None
        batch = eligible[:expected]
        remaining = [
            c for c in self.pending if c not in batch and c.round_index >= round_index
        ]
        dropped = [
            c for c in self.pending if c not in batch and c not in remaining
        ]
        self.pending[:] = remaining
        self.buffered_bytes = sum(c.nbytes for c in remaining)
        self._release(self.charged_nbytes(batch) + self.charged_nbytes(dropped))
        return batch

    def drain(self) -> List[ModelContribution]:
        """Take everything held (e.g. to forward after losing the aggregator role)."""
        pending = list(self.pending)
        self.pending.clear()
        released = self.charged_nbytes(pending)
        self.buffered_bytes = 0
        self._release(released)
        return pending

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ContributionBuffer({self.owner_id!r}, pending={len(self.pending)}, "
            f"bytes={self.buffered_bytes})"
        )


def _stack_contributions(
    contributions: Sequence[ModelContribution],
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[str, Tuple[int, ...]]]]:
    """Flatten and stack contributions into (matrix, weights, spec).

    Only the order-sensitive robust strategies (median, trimmed mean) pay for
    this K×D materialization; the mean family streams through
    :func:`_streaming_weighted_sum` instead.
    """
    if not contributions:
        raise AggregationError("cannot aggregate zero contributions")
    first_vector, spec = flatten_state_dict(contributions[0].state)
    matrix = np.empty((len(contributions), first_vector.size), dtype=np.float64)
    matrix[0] = first_vector
    for row, contribution in enumerate(contributions[1:], start=1):
        vector, other_spec = flatten_state_dict(contribution.state)
        if [s for _, s in other_spec] != [s for _, s in spec] or vector.size != first_vector.size:
            raise AggregationError(
                f"contribution from {contribution.sender_id!r} has mismatched parameter shapes"
            )
        matrix[row] = vector
    weights = np.array([c.weight for c in contributions], dtype=np.float64)
    return matrix, weights, spec


def _streaming_weighted_sum(
    contributions: Sequence[ModelContribution],
    weighted: bool,
) -> Tuple[np.ndarray, np.ndarray, List[Tuple[str, Tuple[int, ...]]]]:
    """Accumulate ``sum_i w_i · x_i`` in place; returns (sum, weights, spec).

    The accumulator and one scratch vector are the only allocations — each
    contribution's leaves are multiply-added segment by segment in
    contribution order (the caller passes them in deterministic roster
    order), so no K×D matrix exists at any point.  With ``weighted=False``
    the plain sum is accumulated (the uniform-mean path).

    The first contribution is written directly (not added to zeros) so the
    result is bit-identical to a sequential matrix reduction even for
    signed-zero entries.
    """
    if not contributions:
        raise AggregationError("cannot aggregate zero contributions")
    first_state = contributions[0].state
    spec: List[Tuple[str, Tuple[int, ...]]] = []
    sizes: List[int] = []
    total_size = 0
    for name, value in first_state.items():
        array = np.asarray(value)
        spec.append((name, tuple(array.shape)))
        sizes.append(array.size)
        total_size += array.size
    accumulator = np.empty(total_size, dtype=np.float64)
    scratch = np.empty(total_size, dtype=np.float64)
    weights = np.empty(len(contributions), dtype=np.float64)

    for row, contribution in enumerate(contributions):
        weights[row] = contribution.weight
        # A *strong* float64 scalar: under NEP 50 a python float would let a
        # float32 leaf select the float32 loop and only cast the product,
        # losing bit-identity with the float64 matrix reference path.
        weight64 = weights[row]
        state = contribution.state
        values = list(state.values())
        if len(values) != len(spec) or any(
            np.asarray(value).shape != shape for value, (_, shape) in zip(values, spec)
        ):
            raise AggregationError(
                f"contribution from {contribution.sender_id!r} has mismatched parameter shapes"
            )
        target = accumulator if row == 0 else scratch
        offset = 0
        for value, size in zip(values, sizes):
            segment = target[offset : offset + size]
            leaf = np.asarray(value).ravel()
            if weighted:
                # Mixed-dtype ufunc with a strong float64 scalar computes in
                # float64, bit-identical to converting the leaf first.
                np.multiply(leaf, weight64, out=segment)
            else:
                segment[:] = leaf
            offset += size
        if row > 0:
            accumulator += scratch
    return accumulator, weights, spec


class AggregationStrategy:
    """Base class: subclasses implement :meth:`reduce` over a stacked matrix.

    The default :meth:`aggregate` stacks the K×D matrix and calls
    :meth:`reduce` — the path the order-sensitive robust strategies need.
    Mean-family subclasses override :meth:`aggregate` with the streaming
    accumulation and keep :meth:`reduce` as the reference (and
    directly-callable) matrix implementation.
    """

    name = "base"

    def aggregate(self, contributions: Sequence[ModelContribution]) -> StateDict:
        """Aggregate contributions into a single state dict."""
        matrix, weights, spec = _stack_contributions(contributions)
        reduced = self.reduce(matrix, weights)
        return unflatten_state_dict(reduced, spec)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        """Reduce a ``(num_models, num_params)`` matrix to a single vector."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}()"


class FedAvg(AggregationStrategy):
    """Sample-count-weighted federated averaging (the paper's choice)."""

    name = "fedavg"

    def aggregate(self, contributions: Sequence[ModelContribution]) -> StateDict:
        """Streaming weighted mean: in-place multiply-add, no K×D matrix."""
        accumulator, weights, spec = _streaming_weighted_sum(contributions, weighted=True)
        accumulator /= np.sum(weights)
        return unflatten_state_dict(accumulator, spec)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.average(matrix, axis=0, weights=weights)


class UniformAverage(AggregationStrategy):
    """Unweighted mean of the contributions."""

    name = "mean"

    def aggregate(self, contributions: Sequence[ModelContribution]) -> StateDict:
        """Streaming unweighted mean: in-place adds, no K×D matrix."""
        accumulator, _weights, spec = _streaming_weighted_sum(contributions, weighted=False)
        accumulator /= float(len(contributions))
        return unflatten_state_dict(accumulator, spec)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return matrix.mean(axis=0)


class CoordinateMedian(AggregationStrategy):
    """Element-wise median — robust to a minority of arbitrarily bad updates."""

    name = "median"

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return np.median(matrix, axis=0)


class TrimmedMean(AggregationStrategy):
    """Element-wise mean after discarding the ``trim_ratio`` extremes on each side."""

    name = "trimmed_mean"

    def __init__(self, trim_ratio: float = 0.1) -> None:
        require_in_range(trim_ratio, "trim_ratio", 0.0, 0.5, inclusive=False)
        self.trim_ratio = float(trim_ratio)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        num_models = matrix.shape[0]
        trim = int(np.floor(num_models * self.trim_ratio))
        if 2 * trim >= num_models:
            trim = max(0, (num_models - 1) // 2)
        if trim == 0:
            return matrix.mean(axis=0)
        ordered = np.sort(matrix, axis=0)
        return ordered[trim : num_models - trim].mean(axis=0)


class FedAvgMomentum(AggregationStrategy):
    """FedAvg with server-side momentum (FedAvgM).

    Keeps an internal velocity across calls, so a single instance must be
    reused round to round (the parameter server / root aggregator owns it).
    """

    name = "fedavgm"

    def __init__(self, momentum: float = 0.9, server_lr: float = 1.0) -> None:
        require_in_range(momentum, "momentum", 0.0, 1.0)
        require_positive(server_lr, "server_lr")
        self.momentum = float(momentum)
        self.server_lr = float(server_lr)
        self._velocity: Optional[np.ndarray] = None
        self._previous: Optional[np.ndarray] = None

    def aggregate(self, contributions: Sequence[ModelContribution]) -> StateDict:
        """Streaming FedAvg average, then the server-momentum update."""
        accumulator, weights, spec = _streaming_weighted_sum(contributions, weighted=True)
        accumulator /= np.sum(weights)
        return unflatten_state_dict(self._momentum_update(accumulator), spec)

    def reduce(self, matrix: np.ndarray, weights: np.ndarray) -> np.ndarray:
        return self._momentum_update(np.average(matrix, axis=0, weights=weights))

    def _momentum_update(self, average: np.ndarray) -> np.ndarray:
        if self._previous is None:
            self._previous = average.copy()
            self._velocity = np.zeros_like(average)
            return average
        delta = average - self._previous
        assert self._velocity is not None
        self._velocity = self.momentum * self._velocity + delta
        updated = self._previous + self.server_lr * self._velocity
        self._previous = updated.copy()
        return updated

    def reset(self) -> None:
        """Forget the velocity (e.g. between sessions)."""
        self._velocity = None
        self._previous = None


_REGISTRY: Dict[str, type] = {
    FedAvg.name: FedAvg,
    UniformAverage.name: UniformAverage,
    CoordinateMedian.name: CoordinateMedian,
    TrimmedMean.name: TrimmedMean,
    FedAvgMomentum.name: FedAvgMomentum,
}


def available_aggregators() -> List[str]:
    """Names of all registered aggregation strategies."""
    return sorted(_REGISTRY)


def get_aggregator(name: str, **kwargs) -> AggregationStrategy:
    """Instantiate an aggregation strategy by name.

    >>> get_aggregator("fedavg").name
    'fedavg'
    """
    key = name.lower()
    if key not in _REGISTRY:
        raise AggregationError(
            f"unknown aggregation strategy {name!r}; available: {available_aggregators()}"
        )
    return _REGISTRY[key](**kwargs)
