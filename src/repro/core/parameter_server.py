"""The parameter server: repository of global models + update synchronizer.

The parameter server (paper §III.B.2) "listens to a public topic designated
for sending and receiving global models" and "serves as a repository for
global models"; its *global update synchronizer* pushes each new global model
back out to every contributor.  It can run on the same machine as the
coordinator or on a separate one — here it is an independent component with
its own MQTT client either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.topics import (
    COORDINATOR_ID,
    PARAMETER_SERVER_ID,
    coordinator_call_topic,
    global_store_topic,
    global_update_topic,
)
from repro.ml.state import StateDict, state_dict_nbytes
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient
from repro.mqttfc.rfc import FleetControlEndpoint
from repro.sim.events import EventLog

__all__ = ["ParameterServer", "GlobalModelRecord"]

#: Wildcard filter matching every session's global-store topic.
_STORE_WILDCARD = "sdflmq/session/+/global/store"


@dataclass
class GlobalModelRecord:
    """The latest stored global model of one session."""

    session_id: str
    model_name: str = ""
    version: int = 0
    round_index: int = -1
    state: Optional[StateDict] = None
    total_weight: float = 0.0
    num_contributors: int = 0
    history_bytes: int = 0


class ParameterServer:
    """Stores per-session global models and synchronizes them to clients."""

    def __init__(
        self,
        broker: MQTTBroker,
        client_id: str = PARAMETER_SERVER_ID,
        notify_coordinator: bool = True,
        event_log: Optional[EventLog] = None,
    ) -> None:
        self.client_id = client_id
        self.mqtt = MQTTClient(client_id)
        self.mqtt.connect(broker)
        self.endpoint = FleetControlEndpoint(self.mqtt)
        self.endpoint.start()
        self.notify_coordinator = bool(notify_coordinator)
        self.event_log = event_log
        self._models: Dict[str, GlobalModelRecord] = {}
        self.stores_received = 0
        self.updates_published = 0
        self.duplicate_stores_ignored = 0

        # One wildcard registration serves every session's store topic.
        self.endpoint.register("store_global", self._handle_store_global, _STORE_WILDCARD)
        self.endpoint.register("fetch_global", self._handle_fetch_global)

    # ------------------------------------------------------------- accessors

    def sessions(self) -> list[str]:
        """Session ids with at least one stored global model (sorted)."""
        return sorted(self._models)

    def record(self, session_id: str) -> GlobalModelRecord:
        """The stored record for ``session_id`` (KeyError if absent)."""
        return self._models[session_id]

    def has_model(self, session_id: str) -> bool:
        """Whether a global model is stored for ``session_id``."""
        return session_id in self._models

    def global_state(self, session_id: str) -> Optional[StateDict]:
        """Latest global parameters for ``session_id`` (None if not stored yet)."""
        record = self._models.get(session_id)
        return None if record is None else record.state

    # ---------------------------------------------------------- RFC handlers

    def _handle_store_global(self, payload: dict) -> dict:
        session_id = str(payload["session_id"])
        round_index = int(payload.get("round_index", 0))
        state: StateDict = payload["state"]
        record = self._models.setdefault(session_id, GlobalModelRecord(session_id=session_id))
        if record.state is not None and round_index <= record.round_index:
            # Duplicate or stale store: a mid-round failure can race the
            # coordinator's round restart against an aggregate already in
            # flight, producing a second global for a round that is stored.
            # The repository keeps exactly one global per round, so the late
            # copy is acknowledged (with the existing version) but not stored,
            # re-announced or counted — otherwise the coordinator's
            # rounds-vs-versions bookkeeping would drift and the *next*
            # failure would go unrepaired.
            self.duplicate_stores_ignored += 1
            if self.event_log is not None:
                self.event_log.record(
                    timestamp=self.mqtt.broker.now() if self.mqtt.broker else 0.0,
                    kind="global_model_store_ignored",
                    actor=self.client_id,
                    session_id=session_id,
                    round_index=round_index,
                    detail=f"already at round {record.round_index} version {record.version}",
                )
            return {"session_id": session_id, "version": record.version, "duplicate": True}
        record.version += 1
        record.round_index = round_index
        record.state = state
        record.model_name = str(payload.get("model_name", record.model_name))
        record.total_weight = float(payload.get("total_weight", 0.0))
        record.num_contributors = int(payload.get("num_contributors", 0))
        record.history_bytes += state_dict_nbytes(state)
        self.stores_received += 1

        if self.event_log is not None:
            self.event_log.record(
                timestamp=self.mqtt.broker.now() if self.mqtt.broker else 0.0,
                kind="global_model_stored",
                actor=self.client_id,
                session_id=session_id,
                round_index=round_index,
                detail=f"version={record.version}",
            )

        self._publish_update(record)
        if self.notify_coordinator:
            self.endpoint.call_topic(
                coordinator_call_topic("global_stored"),
                "global_stored",
                {
                    "session_id": session_id,
                    "round_index": round_index,
                    "version": record.version,
                    "num_contributors": record.num_contributors,
                },
                expect_response=False,
            )
        return {"session_id": session_id, "version": record.version}

    def _handle_fetch_global(self, session_id: str) -> dict:
        record = self._models.get(session_id)
        if record is None or record.state is None:
            return {"session_id": session_id, "found": False}
        return {
            "session_id": session_id,
            "found": True,
            "version": record.version,
            "round_index": record.round_index,
            "state": record.state,
        }

    # --------------------------------------------------------------- publish

    def _publish_update(self, record: GlobalModelRecord) -> None:
        self.endpoint.call_topic(
            global_update_topic(record.session_id),
            "apply_global",
            {
                "session_id": record.session_id,
                "round_index": record.round_index,
                "version": record.version,
                "num_contributors": record.num_contributors,
                "state": record.state,
            },
            expect_response=False,
        )
        self.updates_published += 1

    def republish(self, session_id: str) -> bool:
        """Re-publish the latest global model (e.g. after clients reconnect)."""
        record = self._models.get(session_id)
        if record is None or record.state is None:
            return False
        self._publish_update(record)
        return True
