"""The coordinator's load balancer.

The load balancer (paper §III.E.6) re-runs the role-optimization policy each
round against the latest client stats, rebuilds the cluster topology with the
chosen aggregators, and computes the *difference* against the previous
topology so the coordinator only informs the clients whose role or position
actually changed (paper §III.E.5: "this process informs only the clients whose
roles have changed for the new FL round").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.clustering import ClusteringConfig, ClusteringEngine, ClusterTopology
from repro.core.messages import RoleAssignment
from repro.core.role_optimizers import RoleOptimizationPolicy, StaticPolicy
from repro.sim.device import DeviceStats

__all__ = ["LoadBalancer", "RebalanceResult"]


@dataclass
class RebalanceResult:
    """Output of one load-balancing pass."""

    topology: ClusterTopology
    assignments: Dict[str, RoleAssignment]
    changed_clients: List[str] = field(default_factory=list)
    unchanged_clients: List[str] = field(default_factory=list)

    @property
    def num_informed(self) -> int:
        """How many clients the coordinator must contact for this rebalance."""
        return len(self.changed_clients)


class LoadBalancer:
    """Combines a role-optimization policy with the clustering engine."""

    def __init__(
        self,
        clustering: Optional[ClusteringEngine] = None,
        policy: Optional[RoleOptimizationPolicy] = None,
    ) -> None:
        self.clustering = clustering or ClusteringEngine(ClusteringConfig())
        self.policy = policy or StaticPolicy()

    def plan(
        self,
        session_id: str,
        client_ids: Sequence[str],
        round_index: int,
        stats: Optional[Dict[str, DeviceStats]] = None,
        previous: Optional[ClusterTopology] = None,
    ) -> RebalanceResult:
        """Produce the topology and role assignments for ``round_index``.

        When ``previous`` is given, only clients whose assignment differs from
        the previous round are listed in ``changed_clients``; on the first
        round every client is "changed" (initial role arrangement, §III.E.3).
        """
        clients = list(dict.fromkeys(client_ids))
        stats = stats or {}
        num_aggregators = self.clustering.num_aggregators(len(clients)) if len(clients) > 1 else 1
        num_aggregators = min(num_aggregators, len(clients))
        current_aggregators = previous.aggregator_ids if previous is not None else []
        selected = self.policy.select_aggregators(
            candidates=clients,
            num_aggregators=num_aggregators,
            stats=stats,
            current_aggregators=current_aggregators,
            round_index=round_index,
        )
        topology = self.clustering.build(session_id, clients, aggregator_ids=selected)
        assignments = self.assignments_for(topology, round_index)

        changed: List[str] = []
        unchanged: List[str] = []
        if previous is None:
            changed = list(topology.client_ids)
        else:
            previous_assignments = self.assignments_for(previous, round_index)
            for cid in topology.client_ids:
                before = previous_assignments.get(cid)
                after = assignments[cid]
                if before is None or not self._same_position(before, after):
                    changed.append(cid)
                else:
                    unchanged.append(cid)
        return RebalanceResult(
            topology=topology,
            assignments=assignments,
            changed_clients=changed,
            unchanged_clients=unchanged,
        )

    @staticmethod
    def _same_position(before: RoleAssignment, after: RoleAssignment) -> bool:
        return (
            before.role == after.role
            and before.parent_id == after.parent_id
            and before.expected_contributions == after.expected_contributions
            and sorted(before.children) == sorted(after.children)
        )

    @staticmethod
    def assignments_for(topology: ClusterTopology, round_index: int) -> Dict[str, RoleAssignment]:
        """Translate a topology into per-client :class:`RoleAssignment` messages."""
        assignments: Dict[str, RoleAssignment] = {}
        for cid in topology.client_ids:
            node = topology.node(cid)
            assignments[cid] = RoleAssignment(
                session_id=topology.session_id,
                client_id=cid,
                role=node.role.value,
                round_index=round_index,
                parent_id=node.parent_id,
                expected_contributions=node.fan_in,
                children=list(node.children),
                level=node.level,
            )
        return assignments
