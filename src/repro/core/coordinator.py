"""The SDFLMQ coordinator.

The coordinator (paper §III.D–E) governs sessions, clustering and role
management.  It never touches model parameters: it "only receives the metadata
needed to perform role arrangement and rearrangement and sends only routing
and task placement metadata to the clients" (§III.B.2).  Concretely it serves
four MQTTFC functions:

* ``new_fl_session`` — create a session (first request wins, §III.E.1);
* ``join_fl_session`` — add a contributor to a waiting session;
* ``report_stats`` — per-round readiness + system stats from a client;
* ``global_stored`` — notification from the parameter server that the round's
  global model is available.

When a session fills up the coordinator builds the initial cluster topology
and sends every contributor its role over the client's private control topic;
at every round boundary it re-runs the load balancer and contacts only the
clients whose role changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.clustering import ClusteringConfig, ClusteringEngine
from repro.core.errors import SessionNotFoundError
from repro.core.load_balancer import LoadBalancer, RebalanceResult
from repro.core.messages import (
    ClientStatsReport,
    JoinAck,
    JoinRequest,
    SessionAck,
    SessionRequest,
)
from repro.core.role_optimizers import RoleOptimizationPolicy, StaticPolicy
from repro.core.session import FLSession, SessionState
from repro.core.topics import (
    COORDINATOR_ID,
    PRESENCE_WILDCARD,
    client_call_topic,
    coordinator_call_topic,
    session_broadcast_topic,
)
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient
from repro.mqttfc.rfc import FleetControlEndpoint
from repro.sim.events import EventLog

__all__ = ["Coordinator", "CoordinatorConfig"]


@dataclass
class CoordinatorConfig:
    """Tunable coordinator behaviour.

    Attributes
    ----------
    clustering:
        Topology construction parameters (policy, aggregator fraction, ...).
    auto_start_when_full:
        Start a session as soon as it reaches ``session_capacity_max``
        contributors (the deterministic runtime relies on this).
    rebalance_every_round:
        Re-run the role optimizer at every round boundary.  When False the
        initial arrangement is kept for the whole session (the "static"
        ablation).
    """

    clustering: ClusteringConfig = field(default_factory=ClusteringConfig)
    auto_start_when_full: bool = True
    rebalance_every_round: bool = True


class Coordinator:
    """Coordinator node: session manager + clustering engine + load balancer."""

    def __init__(
        self,
        broker: MQTTBroker,
        config: Optional[CoordinatorConfig] = None,
        policy: Optional[RoleOptimizationPolicy] = None,
        client_id: str = COORDINATOR_ID,
        event_log: Optional[EventLog] = None,
    ) -> None:
        self.config = config or CoordinatorConfig()
        self.client_id = client_id
        self.mqtt = MQTTClient(client_id)
        self.mqtt.connect(broker)
        self.endpoint = FleetControlEndpoint(self.mqtt)
        self.endpoint.start()
        self.event_log = event_log
        self.load_balancer = LoadBalancer(
            clustering=ClusteringEngine(self.config.clustering),
            policy=policy or StaticPolicy(),
        )
        self.sessions: Dict[str, FLSession] = {}
        self.rejected_session_requests = 0
        self.role_messages_sent = 0
        self.rebalances = 0
        self.clients_dropped = 0
        self.mid_round_restarts = 0
        #: Clients whose next join should be treated as a *mid-round* arrival
        #: (see :meth:`note_mid_round_join`).
        self._mid_round_joins: set = set()

        # Client liveness: presence topics carry plain "online"/"offline"
        # markers (retained / last-will), outside the MQTTFC framing.
        self.mqtt.message_callback_add(PRESENCE_WILDCARD, self._on_presence)
        self.mqtt.subscribe(PRESENCE_WILDCARD, 1)

        self.endpoint.register(
            "new_fl_session", self._handle_new_session, coordinator_call_topic("new_fl_session")
        )
        self.endpoint.register(
            "join_fl_session", self._handle_join_session, coordinator_call_topic("join_fl_session")
        )
        self.endpoint.register(
            "report_stats", self._handle_report_stats, coordinator_call_topic("report_stats")
        )
        self.endpoint.register(
            "global_stored", self._handle_global_stored, coordinator_call_topic("global_stored")
        )

    # ------------------------------------------------------------------ util

    def _now(self) -> float:
        broker = self.mqtt.broker
        return broker.now() if broker is not None else 0.0

    def _record(self, kind: str, session_id: str, detail: str = "", round_index: int = -1) -> None:
        if self.event_log is not None:
            self.event_log.record(
                timestamp=self._now(),
                kind=kind,
                actor=self.client_id,
                session_id=session_id,
                round_index=round_index,
                detail=detail,
            )

    def session(self, session_id: str) -> FLSession:
        """Look up a session; raises :class:`SessionNotFoundError` if unknown."""
        session = self.sessions.get(session_id)
        if session is None:
            raise SessionNotFoundError(f"unknown session {session_id!r}")
        return session

    def active_sessions(self) -> List[str]:
        """Ids of sessions that are still active (sorted)."""
        return sorted(sid for sid, s in self.sessions.items() if s.is_active)

    # ------------------------------------------------------- RFC: new session

    def _handle_new_session(self, request_dict: dict) -> dict:
        request = SessionRequest.from_dict(request_dict)
        if request.session_id in self.sessions:
            # Paper: "If two clients send initiation requests, the coordinator
            # will serve the first request, and dump the other one."
            self.rejected_session_requests += 1
            return SessionAck(
                session_id=request.session_id,
                accepted=False,
                reason="session id already exists; first request wins",
            ).to_dict()
        session = FLSession(request=request, created_at=self._now())
        # Stamp lifecycle events with broker time so subscribers (fault
        # anchors, the per-phase round timer) see when transitions committed.
        session.lifecycle.clock = self._now
        self.sessions[request.session_id] = session
        session.add_contributor(
            request.requester_id, preferred_role=request.preferred_role, num_samples=0
        )
        self._record("session_created", request.session_id, detail=request.model_name)
        self._maybe_start(session)
        return SessionAck(session_id=request.session_id, accepted=True).to_dict()

    # ------------------------------------------------------ RFC: join session

    def note_mid_round_join(self, client_id: str) -> None:
        """Flag ``client_id``'s next join as a mid-round arrival.

        A real deployment would carry this on the join request itself; the
        simulation keeps the wire format byte-stable (message sizes feed the
        delivery-latency model) and signals out-of-band instead.  A flagged
        join that lands while the round is still collecting folds the joiner
        in *and* restarts the round, so contributions shuffled mid-flight by
        the re-plan are re-sent under the new topology and the joiner's own
        upload is counted — the restart-epoch machinery guarantees stale
        pre-fold uploads cannot leak into the restarted round.
        """
        self._mid_round_joins.add(client_id)

    def _handle_join_session(self, join_dict: dict) -> dict:
        join = JoinRequest.from_dict(join_dict)
        # Consume the mid-round marker no matter how the join resolves: a
        # rejected join must not leave a stale flag that would turn the
        # client's next (boundary) join into a spurious round restart.
        mid_round = join.client_id in self._mid_round_joins
        self._mid_round_joins.discard(join.client_id)
        session = self.sessions.get(join.session_id)
        if session is None:
            return JoinAck(
                session_id=join.session_id,
                client_id=join.client_id,
                accepted=False,
                reason="no such session",
            ).to_dict()
        if not session.is_active or session.is_full and join.client_id not in session.contributors:
            reason = "session full" if session.is_full else "session not accepting contributors"
            return JoinAck(
                session_id=join.session_id, client_id=join.client_id, accepted=False, reason=reason
            ).to_dict()
        count = session.add_contributor(
            join.client_id, preferred_role=join.preferred_role, num_samples=join.num_samples
        )
        self._record("client_joined", join.session_id, detail=join.client_id)
        self._maybe_start(session)
        if (
            session.state == SessionState.RUNNING
            and session.topology is not None
            and join.client_id not in session.topology.client_ids
        ):
            # Late join into a running session (flash-crowd arrival, or a
            # dropped client returning): fold the newcomer into the topology
            # immediately — the mirror image of the offline re-plan — so it
            # holds a role before its first uploads start.  The lifecycle
            # roster tolerates the addition in any phase (the ADMIT
            # transition), and the only_changed assignment pass re-issues the
            # expected-contribution counts of the aggregators whose cluster
            # grew — which is exactly what lets a *mid-round* joiner's upload
            # be awaited instead of stranded.  No in-flight contribution is
            # invalidated, so no restart is needed.
            result = self.load_balancer.plan(
                session_id=session.session_id,
                client_ids=session.contributors,
                round_index=session.round_index,
                stats=session.stats,
                previous=session.topology,
            )
            session.topology = result.topology
            self._send_assignments(result, session, only_changed=True)
            self._announce_topology(session)
            self._record("client_late_join", session.session_id, detail=join.client_id,
                         round_index=session.round_index)
            if mid_round and session.global_versions <= session.round_index:
                # The join landed while the round's uploads were in flight:
                # the fold may have re-parented senders whose contributions
                # are already routed to the old tree, and the joiner's own
                # upload must be awaited.  Restart the round exactly as for a
                # mid-round departure — survivors re-send under the new
                # topology, stamped with the bumped epoch.
                epoch = session.lifecycle.restart()
                self._broadcast(
                    session,
                    {
                        "event": "round_restart",
                        "round_index": session.round_index,
                        "epoch": epoch,
                    },
                )
                self._record("round_restart", session.session_id,
                             round_index=session.round_index,
                             detail=f"after {join.client_id} joined mid-round")
                session.lifecycle.resume()
                self.mid_round_restarts += 1
        return JoinAck(
            session_id=join.session_id, client_id=join.client_id, accepted=True, contributors=count
        ).to_dict()

    # ------------------------------------------------------------ RFC: stats

    def _handle_report_stats(self, report_dict: dict) -> None:
        report = ClientStatsReport.from_dict(report_dict)
        session = self.sessions.get(report.session_id)
        if session is None:
            return
        session.record_stats(report)
        if report.num_samples:
            session.client_samples[report.client_id] = report.num_samples
        self._maybe_advance(session)

    # ---------------------------------------------------- RFC: global stored

    def _handle_global_stored(self, notice: dict) -> None:
        session = self.sessions.get(str(notice.get("session_id", "")))
        if session is None:
            return
        session.note_global_update()
        self._record(
            "global_stored",
            session.session_id,
            round_index=int(notice.get("round_index", -1)),
            detail=f"version={notice.get('version')}",
        )
        self._maybe_advance(session)

    # ------------------------------------------------------------- presence

    def _on_presence(self, _client, message) -> None:
        """Handle a presence marker ("online"/"offline") for one client."""
        client_id = message.topic.rsplit("/", 1)[-1]
        if message.payload != b"offline":
            return
        self._handle_client_offline(client_id)

    def _handle_client_offline(self, client_id: str) -> None:
        """Remove a departed client from every active session and re-plan roles.

        If the departed client held an aggregation role (or was a pending
        trainer in a running round), the remaining clients get updated
        assignments so that aggregators no longer wait for a contribution that
        will never arrive.
        """
        touched = False
        for session in list(self.sessions.values()):
            if client_id not in session.contributors or not session.is_active:
                continue
            session.remove_contributor(client_id)
            touched = True
            self._record("client_offline", session.session_id, detail=client_id,
                         round_index=session.round_index)
            if not session.contributors:
                self.terminate_session(session.session_id, reason="all contributors left")
                continue
            if session.state != SessionState.RUNNING or session.topology is None:
                continue
            result = self.load_balancer.plan(
                session_id=session.session_id,
                client_ids=session.contributors,
                round_index=session.round_index,
                stats=session.stats,
                previous=session.topology,
            )
            session.topology = result.topology
            self._send_assignments(result, session, only_changed=True)
            self._announce_topology(session)
            self._broadcast(session, {"event": "contributor_left", "client_id": client_id})
            # If the departure happened mid-round (the round's global model has
            # not been stored yet), contributions routed toward the departed
            # client — or aggregates it had already produced — may be lost.
            # Restart the round: survivors clear their aggregation buffers and
            # re-send their local updates under the new topology.
            if session.global_versions <= session.round_index:
                epoch = session.lifecycle.restart()
                self._broadcast(
                    session,
                    {
                        "event": "round_restart",
                        "round_index": session.round_index,
                        "epoch": epoch,
                    },
                )
                self._record("round_restart", session.session_id, round_index=session.round_index,
                             detail=f"after {client_id} left")
                session.lifecycle.resume()
        if touched:
            self.clients_dropped += 1

    # --------------------------------------------------------- session start

    def start_session(self, session_id: str) -> RebalanceResult:
        """Run clustering + initial role arrangement for a session with quorum."""
        session = self.session(session_id)
        session.begin()
        result = self.load_balancer.plan(
            session_id=session.session_id,
            client_ids=session.contributors,
            round_index=session.round_index,
            stats=session.stats,
            previous=None,
        )
        session.topology = result.topology
        self._announce_topology(session)
        self._send_assignments(result, session)
        session.lifecycle.roles_announced()
        self._record(
            "session_started",
            session.session_id,
            round_index=session.round_index,
            detail=f"contributors={len(session.contributors)}",
        )
        return result

    def _maybe_start(self, session: FLSession) -> None:
        if (
            self.config.auto_start_when_full
            and session.state in (SessionState.WAITING_FOR_CONTRIBUTORS, SessionState.READY)
            and session.is_full
        ):
            self.start_session(session.session_id)

    # -------------------------------------------------------- round boundary

    def _maybe_advance(self, session: FLSession) -> None:
        if session.state != SessionState.RUNNING:
            return
        current = session.round_index
        # The round is complete once the parameter server stored the global
        # model for it and every contributor reported readiness (stats).
        if session.global_versions <= current:
            return
        if not session.round_ready(current):
            return
        next_round = session.advance_round()
        if session.state == SessionState.COMPLETED:
            self._broadcast(session, {"event": "session_complete", "rounds": session.completed_rounds})
            self._record("session_complete", session.session_id, round_index=current)
            return

        if self.config.rebalance_every_round:
            result = self.load_balancer.plan(
                session_id=session.session_id,
                client_ids=session.contributors,
                round_index=next_round,
                stats=session.stats,
                previous=session.topology,
            )
            session.topology = result.topology
            self.rebalances += 1
            self._send_assignments(result, session, only_changed=True)
            self._announce_topology(session)
        session.lifecycle.roles_announced()
        self._broadcast(
            session,
            {
                "event": "round_advanced",
                "round_index": next_round,
                "restart_epoch": session.restart_epochs,
            },
        )
        self._record("round_advanced", session.session_id, round_index=next_round)

    # ------------------------------------------------------------- messaging

    def _send_assignments(
        self, result: RebalanceResult, session: FLSession, only_changed: bool = False
    ) -> None:
        targets = result.changed_clients if only_changed else list(result.assignments)
        for client_id in targets:
            assignment = result.assignments[client_id]
            self.endpoint.call_topic(
                client_call_topic(client_id, "set_role"),
                "set_role",
                assignment.to_dict(),
                expect_response=False,
            )
            self.role_messages_sent += 1
        self._record(
            "roles_arranged",
            session.session_id,
            round_index=result.topology and session.round_index or session.round_index,
            detail=f"informed={len(targets)}",
        )

    def _announce_topology(self, session: FLSession) -> None:
        if session.topology is None:
            return
        self._broadcast(
            session,
            {
                "event": "cluster_topology",
                "round_index": session.round_index,
                "topology": session.topology.to_dict(),
                "aggregation": session.request.aggregation,
                # Clients that were offline during a mid-round restart sync
                # their restart epoch from here (and from round_advanced), so
                # their next upload is not mistaken for a stale pre-restart
                # contribution and dropped.
                "restart_epoch": session.restart_epochs,
            },
        )

    def _broadcast(self, session: FLSession, notice: dict) -> None:
        payload = dict(notice)
        payload.setdefault("session_id", session.session_id)
        self.endpoint.call_topic(
            session_broadcast_topic(session.session_id),
            "session_control",
            payload,
            expect_response=False,
        )

    # ---------------------------------------------------------------- admin

    def terminate_session(self, session_id: str, reason: str = "operator") -> None:
        """Terminate a session and notify its contributors."""
        session = self.session(session_id)
        session.terminate(reason)
        self._broadcast(session, {"event": "session_terminated", "reason": reason})
        self._record("session_terminated", session_id, detail=reason)

    def expire_sessions(self) -> List[str]:
        """Terminate sessions whose wall-time budget has elapsed; returns their ids."""
        expired = []
        now = self._now()
        for session in list(self.sessions.values()):
            if session.is_active and session.expired(now):
                self.terminate_session(session.session_id, reason="session time exceeded")
                expired.append(session.session_id)
        return expired
