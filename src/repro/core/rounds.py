"""The round-lifecycle state machine.

Before this module existed, round state was smeared across three layers:
``FLSession`` counted ``round_index``/``restart_epochs``, the coordinator
bumped and broadcast them from three different handlers, every client mirrored
them in ``SessionParticipation`` fields, and the experiment harness kept its
own deadline arithmetic.  :class:`RoundLifecycle` centralizes the
*authoritative* (coordinator-side) state — the phase machine, the restart
epoch, the participant roster and the round-deadline timer — and emits typed
:class:`LifecycleEvent` notifications at every transition, which is what lets
the scenario layer anchor fault windows to *rounds and phases* instead of
absolute simulated seconds.

The phase machine::

                    begin_round                roles_announced
        IDLE ──────────────────▶ PLANNING ──────────────────▶ COLLECTING
                                    ▲                         │        │
                                    │ begin_round             │ restart│
                                    │ (next round)    resume  ▼        │
        COMPLETE ◀── ADVANCED ◀─── AGGREGATING       RESTARTED ◀───────┘
                 complete      advance      ▲  global_stored   │
                                            └──────────────────┘
                                                 (COLLECTING)

* ``PLANNING`` — the coordinator is (re)arranging roles for the round.
* ``COLLECTING`` — contributions are in flight through the aggregation tree.
* ``AGGREGATING`` — the round's global model is stored; the coordinator is
  waiting for every contributor's readiness report.
* ``ADVANCED`` — transient: the round was completed and accounted.
* ``RESTARTED`` — transient: a mid-round contributor loss bumped the restart
  epoch; the round re-enters ``COLLECTING`` under the re-planned topology.

Transitions are *strict*: an out-of-order call raises
:class:`RoundLifecycleError` and leaves the machine untouched, which is the
invariant the lifecycle property test hammers with random interleavings.

The client side of the protocol cannot share this object (clients only learn
about rounds through broadcasts), so :class:`ClientRoundView` packages the
*message-derived mirror* every client keeps per session — current round,
restart epoch, upload bookkeeping — together with the epoch-ordering rules
that used to be inlined in ``SDFLMQClient``.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.errors import SDFLMQError

__all__ = [
    "ClientRoundView",
    "LifecycleEvent",
    "PhaseTimer",
    "RoundLifecycle",
    "RoundLifecycleError",
    "RoundPhase",
    "ANCHOR_PHASES",
]


class RoundLifecycleError(SDFLMQError):
    """An invalid round-lifecycle transition was attempted."""


class RoundPhase(str, enum.Enum):
    """Phases a round moves through while its session is running."""

    IDLE = "idle"
    PLANNING = "planning"
    COLLECTING = "collecting"
    AGGREGATING = "aggregating"
    ADVANCED = "advanced"
    RESTARTED = "restarted"
    COMPLETE = "complete"


#: Phases a round-anchored fault window may name (``{"round": 2, "phase":
#: "collecting"}``).  The transient phases are excluded on purpose: a window
#: opening inside ``ADVANCED``/``RESTARTED`` would close before any message
#: moves, which is never what a scenario means.
ANCHOR_PHASES: Tuple[str, ...] = (
    RoundPhase.PLANNING.value,
    RoundPhase.COLLECTING.value,
    RoundPhase.AGGREGATING.value,
)

#: Legal phase transitions (from → allowed targets).  ``COMPLETE`` is
#: reachable from anywhere via :meth:`RoundLifecycle.complete` (session
#: termination is always legal) and therefore not listed per-phase.
_TRANSITIONS: Dict[RoundPhase, Tuple[RoundPhase, ...]] = {
    RoundPhase.IDLE: (RoundPhase.PLANNING,),
    RoundPhase.PLANNING: (RoundPhase.COLLECTING,),
    RoundPhase.COLLECTING: (RoundPhase.AGGREGATING, RoundPhase.RESTARTED),
    RoundPhase.AGGREGATING: (RoundPhase.ADVANCED,),
    RoundPhase.ADVANCED: (RoundPhase.PLANNING,),
    RoundPhase.RESTARTED: (RoundPhase.COLLECTING,),
    RoundPhase.COMPLETE: (),
}


class LifecycleEvent:
    """One typed notification emitted by the lifecycle.

    ``kind`` is one of ``phase`` (a phase transition), ``admit``/``drop``
    (roster changes), ``restart`` (epoch bump), ``advance`` (round
    accounted), ``deadline`` (the armed round deadline expired) or
    ``complete``.  ``phase``/``round_index``/``epoch`` always carry the
    post-transition state; ``at`` is the simulated time the transition
    committed (0.0 when the lifecycle has no clock attached), which is what
    the per-phase round timing is derived from.
    """

    __slots__ = ("kind", "session_id", "round_index", "phase", "epoch", "client_id", "at")

    def __init__(
        self,
        kind: str,
        session_id: str,
        round_index: int,
        phase: "RoundPhase",
        epoch: int,
        client_id: str = "",
        at: float = 0.0,
    ) -> None:
        self.kind = kind
        self.session_id = session_id
        self.round_index = int(round_index)
        self.phase = phase
        self.epoch = int(epoch)
        self.client_id = client_id
        self.at = float(at)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"LifecycleEvent({self.kind!r}, round={self.round_index}, "
            f"phase={self.phase.value!r}, epoch={self.epoch}"
            + (f", client={self.client_id!r}" if self.client_id else "")
            + ")"
        )


class RoundLifecycle:
    """Authoritative round state for one FL session.

    Owns the phase machine, the restart epoch, the participant roster (in
    join order — the load balancer's clustering is order-sensitive) and the
    round-deadline timer.  Every mutation goes through a named transition
    method; listeners registered with :meth:`subscribe` are called
    synchronously, in registration order, after the state change commits.

    >>> lifecycle = RoundLifecycle("s")
    >>> lifecycle.admit("a"); lifecycle.admit("b")
    >>> lifecycle.begin_round(0); lifecycle.roles_announced()
    >>> lifecycle.phase.value
    'collecting'
    >>> lifecycle.restart()
    1
    >>> lifecycle.resume(); lifecycle.global_stored(); lifecycle.advance()
    >>> lifecycle.phase.value, lifecycle.round_index, lifecycle.epoch
    ('advanced', 0, 1)
    """

    def __init__(self, session_id: str, clock: Optional[Callable[[], float]] = None) -> None:
        self.session_id = session_id
        self.phase: RoundPhase = RoundPhase.IDLE
        self.round_index = 0
        self.epoch = 0  # restart epochs broadcast so far
        self.deadline_at: Optional[float] = None
        #: Optional ``now()`` callable stamping every emitted event's ``at``
        #: (the coordinator wires its broker clock in here).  Without one,
        #: events carry ``at=0.0`` and phase timing degrades to zeros.
        self.clock = clock
        self._roster: List[str] = []
        self._listeners: List[Callable[[LifecycleEvent], None]] = []
        self.transitions = 0

    # ------------------------------------------------------------ subscribers

    def subscribe(self, listener: Callable[[LifecycleEvent], None]) -> None:
        """Register a listener called synchronously after every transition."""
        if listener not in self._listeners:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[LifecycleEvent], None]) -> None:
        """Remove a previously registered listener (no-op when absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _emit(self, kind: str, client_id: str = "") -> None:
        event = LifecycleEvent(
            kind=kind,
            session_id=self.session_id,
            round_index=self.round_index,
            phase=self.phase,
            epoch=self.epoch,
            client_id=client_id,
            at=self.clock() if self.clock is not None else 0.0,
        )
        for listener in list(self._listeners):
            listener(event)

    # ----------------------------------------------------------------- roster

    @property
    def roster(self) -> List[str]:
        """The participant roster, in join order (the live list)."""
        return self._roster

    def admit(self, client_id: str) -> None:
        """Add a participant to the roster (idempotent); emits ``admit``.

        Admission is legal in every phase but ``COMPLETE`` — tolerating
        additions *mid-round* (during ``COLLECTING``) is what lets the
        coordinator fold a flash-crowd joiner into a running round; the
        re-issued aggregator expected-counts ride on the same transition.
        """
        if self.phase is RoundPhase.COMPLETE:
            raise RoundLifecycleError(
                f"session {self.session_id!r} is complete; cannot admit {client_id!r}"
            )
        if client_id in self._roster:
            return
        self._roster.append(client_id)
        self._emit("admit", client_id=client_id)

    def drop(self, client_id: str) -> bool:
        """Remove a participant; returns True if present.  Emits ``drop``."""
        if client_id not in self._roster:
            return False
        self._roster.remove(client_id)
        self._emit("drop", client_id=client_id)
        return True

    # ------------------------------------------------------------ transitions

    def _move(self, target: RoundPhase) -> None:
        if target not in _TRANSITIONS[self.phase]:
            raise RoundLifecycleError(
                f"session {self.session_id!r}: illegal transition "
                f"{self.phase.value!r} -> {target.value!r} (round {self.round_index})"
            )
        self.phase = target
        self.transitions += 1

    def begin_round(self, round_index: int) -> None:
        """Enter ``PLANNING`` for ``round_index`` (session start or advance)."""
        round_index = int(round_index)
        if self.phase not in (RoundPhase.IDLE, RoundPhase.ADVANCED):
            raise RoundLifecycleError(
                f"session {self.session_id!r}: cannot begin round {round_index} "
                f"from phase {self.phase.value!r}"
            )
        if round_index < self.round_index:
            raise RoundLifecycleError(
                f"session {self.session_id!r}: round index must not rewind "
                f"({self.round_index} -> {round_index})"
            )
        self._move(RoundPhase.PLANNING)
        self.round_index = round_index
        self.deadline_at = None
        self._emit("phase")

    def roles_announced(self) -> None:
        """Roles for the round are out: ``PLANNING``/``RESTARTED`` → ``COLLECTING``."""
        self._move(RoundPhase.COLLECTING)
        self._emit("phase")

    def global_stored(self) -> None:
        """The round's global model landed: ``COLLECTING`` → ``AGGREGATING``."""
        self._move(RoundPhase.AGGREGATING)
        self._emit("phase")

    def restart(self) -> int:
        """Mid-round contributor loss: bump the epoch, enter ``RESTARTED``.

        Returns the new restart epoch (stamped into the ``round_restart``
        broadcast and echoed by clients in their re-sent contributions).
        Only legal from ``COLLECTING`` — once the round's global model is
        stored, a departure no longer invalidates in-flight aggregates.
        """
        if self.phase is not RoundPhase.COLLECTING:
            raise RoundLifecycleError(
                f"session {self.session_id!r}: restart is only legal while "
                f"collecting, not in phase {self.phase.value!r}"
            )
        self._move(RoundPhase.RESTARTED)
        self.epoch += 1
        self._emit("restart")
        return self.epoch

    def resume(self) -> None:
        """Re-enter ``COLLECTING`` after a restart's re-plan went out."""
        if self.phase is not RoundPhase.RESTARTED:
            raise RoundLifecycleError(
                f"session {self.session_id!r}: resume is only legal after a "
                f"restart, not in phase {self.phase.value!r}"
            )
        self._move(RoundPhase.COLLECTING)
        self._emit("phase")

    def advance(self) -> None:
        """The round is complete and accounted: ``AGGREGATING`` → ``ADVANCED``."""
        self._move(RoundPhase.ADVANCED)
        self.deadline_at = None
        self._emit("advance")

    def complete(self) -> None:
        """Terminal: round budget spent or session terminated (idempotent)."""
        if self.phase is RoundPhase.COMPLETE:
            return
        self.phase = RoundPhase.COMPLETE
        self.transitions += 1
        self.deadline_at = None
        self._emit("complete")

    # --------------------------------------------------------------- deadline

    def arm_deadline(self, now: float, budget_s: float) -> float:
        """Arm the round-deadline timer; returns the absolute deadline.

        The harness owns *enforcement* (draining the scheduler up to the
        deadline and cutting off stragglers); the lifecycle owns the timer
        itself so that the deadline, like every other piece of round state,
        has exactly one home.
        """
        if self.phase is not RoundPhase.COLLECTING:
            raise RoundLifecycleError(
                f"session {self.session_id!r}: a round deadline can only be "
                f"armed while collecting, not in phase {self.phase.value!r}"
            )
        self.deadline_at = float(now) + float(budget_s)
        return self.deadline_at

    def deadline_expired(self) -> None:
        """Note that the armed deadline passed unmet; emits ``deadline``."""
        if self.deadline_at is None:
            raise RoundLifecycleError(
                f"session {self.session_id!r}: no deadline armed"
            )
        self.deadline_at = None
        self._emit("deadline")

    @property
    def is_active(self) -> bool:
        """Whether the lifecycle can still make progress."""
        return self.phase is not RoundPhase.COMPLETE

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RoundLifecycle({self.session_id!r}, phase={self.phase.value!r}, "
            f"round={self.round_index}, epoch={self.epoch}, "
            f"roster={len(self._roster)})"
        )


class PhaseTimer:
    """Per-round wall-of-simulation time spent in each lifecycle phase.

    Subscribe the timer to a :class:`RoundLifecycle`
    (``lifecycle.subscribe(timer.on_event)``) and it accumulates, per round
    index, the simulated seconds between phase entries — ``planning_s``
    (PLANNING entry → COLLECTING entry), ``collecting_s`` (COLLECTING →
    AGGREGATING, summed across restart re-entries) and ``aggregating_s``
    (AGGREGATING → ADVANCED/COMPLETE).  Durations are derived purely from
    the timestamps the lifecycle stamps on its events, so the timer works
    for any driver of the state machine.

    :meth:`exclude` lets a harness discount a synchronous clock jump that
    happens *inside* a phase but is accounted elsewhere — the experiment
    uses it to keep the analytic critical-path advance (already reported as
    ``round_delay_s``) out of ``aggregating_s``, leaving the phase columns
    as pure messaging/settling time next to ``messaging_s``.
    """

    #: Phases whose dwell time is reported (the transient and idle phases are
    #: deliberately excluded — nothing moves during them).
    TIMED_PHASES = (RoundPhase.PLANNING, RoundPhase.COLLECTING, RoundPhase.AGGREGATING)

    def __init__(self) -> None:
        self._times: Dict[int, Dict[str, float]] = {}
        self._active_phase: Optional[RoundPhase] = None
        self._active_round = 0
        self._since = 0.0

    def prime(self, phase: RoundPhase, round_index: int, at: float) -> None:
        """Open the initial interval from a lifecycle's *current* state.

        A timer subscribed to an already-running lifecycle (the experiment
        harness attaches after session setup) would otherwise miss the
        current phase's entry event and drop its dwell time.
        """
        self._active_phase = phase
        self._active_round = int(round_index)
        self._since = float(at)

    def on_event(self, event: LifecycleEvent) -> None:
        """Lifecycle listener: close the open phase interval and open the next."""
        if self._active_phase in self.TIMED_PHASES:
            bucket = self._times.setdefault(self._active_round, {})
            key = f"{self._active_phase.value}_s"
            bucket[key] = bucket.get(key, 0.0) + max(0.0, event.at - self._since)
        self._active_phase = event.phase
        self._active_round = event.round_index
        self._since = event.at

    def exclude(self, seconds: float) -> None:
        """Discount ``seconds`` of the currently open interval (clock jump)."""
        self._since += float(seconds)

    def round_times(self, round_index: int) -> Dict[str, float]:
        """``{planning_s, collecting_s, aggregating_s}`` for one round (zeros if unseen)."""
        bucket = self._times.get(int(round_index), {})
        return {
            "planning_s": float(bucket.get("planning_s", 0.0)),
            "collecting_s": float(bucket.get("collecting_s", 0.0)),
            "aggregating_s": float(bucket.get("aggregating_s", 0.0)),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PhaseTimer(rounds={sorted(self._times)})"


class ClientRoundView:
    """A client's message-derived mirror of one session's round lifecycle.

    Clients never see the coordinator's :class:`RoundLifecycle` directly —
    they learn about rounds, restarts and epochs exclusively through session
    broadcasts.  This view bundles that mirrored state (previously loose
    fields on ``SessionParticipation``) with the epoch-ordering rules that
    keep failure recovery deterministic:

    * rounds and epochs are monotonic (stale broadcasts never rewind them);
    * a ``round_restart`` notice is *new* only if its epoch exceeds the
      highest one processed, and
    * a buffered contribution is *stale* exactly when its epoch predates the
      view's restart epoch.
    """

    __slots__ = (
        "current_round",
        "restart_epoch",
        "awaited_global_version",
        "own_contribution_sent",
        "uploads_sent",
        "completed",
    )

    def __init__(self) -> None:
        self.current_round = 0
        self.restart_epoch = 0
        self.awaited_global_version = 0
        self.own_contribution_sent = False
        self.uploads_sent = 0
        self.completed = False

    # ------------------------------------------------------------- broadcasts

    def observe_round(self, round_index: int) -> int:
        """Adopt a broadcast round index (monotonic); returns the current round."""
        self.current_round = max(self.current_round, int(round_index))
        return self.current_round

    def observe_epoch(self, epoch: int) -> int:
        """Adopt a broadcast restart epoch (monotonic); returns the epoch.

        A client that (re)joined after a mid-round restart never saw the
        ``round_restart`` notice; syncing from the epoch piggybacked on
        ``cluster_topology``/``round_advanced`` broadcasts keeps its uploads
        from being discarded as pre-restart leftovers.
        """
        self.restart_epoch = max(self.restart_epoch, int(epoch))
        return self.restart_epoch

    def round_advanced(self, round_index: int, epoch: int = 0) -> None:
        """Process a ``round_advanced`` broadcast (monotonic, like all views)."""
        self.observe_round(round_index)
        self.own_contribution_sent = False
        self.observe_epoch(epoch)

    def observe_restart(self, round_index: int, epoch: int) -> bool:
        """Process a ``round_restart`` notice; returns False for duplicates.

        ``epoch`` orders restarts against contribution deliveries: an epoch
        at or below the highest processed one is a duplicate or out-of-date
        notice and must be ignored, otherwise a slow re-broadcast would wipe
        re-sent contributions that already superseded it.
        """
        if int(epoch) <= self.restart_epoch:
            return False
        self.restart_epoch = int(epoch)
        self.observe_round(round_index)
        self.own_contribution_sent = False
        return True

    # ------------------------------------------------------------ upload side

    def note_upload(self, global_version: int) -> None:
        """Record a local upload: await the next global version."""
        self.awaited_global_version = int(global_version) + 1
        self.uploads_sent += 1

    def is_stale(self, epoch: int) -> bool:
        """Whether a contribution stamped with ``epoch`` predates a restart."""
        return int(epoch) < self.restart_epoch

    def awaiting_global(self, installed_version: int) -> bool:
        """Whether the client still waits for a global update it asked for."""
        return int(installed_version) < self.awaited_global_version

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ClientRoundView(round={self.current_round}, "
            f"epoch={self.restart_epoch}, awaited={self.awaited_global_version})"
        )
