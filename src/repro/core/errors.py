"""Exception hierarchy for the SDFLMQ core."""

from __future__ import annotations

__all__ = [
    "SDFLMQError",
    "SessionError",
    "SessionFullError",
    "SessionNotFoundError",
    "DuplicateSessionError",
    "RoleError",
    "AggregationError",
    "ModelNotRegisteredError",
]


class SDFLMQError(Exception):
    """Base class for all SDFLMQ framework errors."""


class SessionError(SDFLMQError):
    """Problems with FL session lifecycle."""


class SessionFullError(SessionError):
    """Raised when a client attempts to join a session at maximum capacity."""


class SessionNotFoundError(SessionError, KeyError):
    """Raised when an operation references an unknown session id."""


class DuplicateSessionError(SessionError):
    """Raised when a session id is created twice (the paper: first request wins)."""


class RoleError(SDFLMQError):
    """Raised on inconsistent role transitions or role-topic bookkeeping."""


class AggregationError(SDFLMQError):
    """Raised when an aggregation cannot be performed (empty input, shape mismatch)."""


class ModelNotRegisteredError(SDFLMQError, KeyError):
    """Raised when a client references a model it never registered for a session."""
