"""The SDFLMQ topic scheme.

Every piece of coordination in SDFLMQ is a publish on a well-known topic.
Centralizing the topic layout here keeps the client, coordinator and parameter
server consistent and gives tests a single place to assert against.

Layout (all under the ``sdflmq/`` root)::

    sdflmq/coordinator/call/<function>            coordinator RFC functions
    sdflmq/client/<client_id>/call/<function>     per-client RFC functions (role control)
    sdflmq/session/<session_id>/broadcast         session-wide announcements
    sdflmq/session/<session_id>/aggregator/<client_id>/params
                                                  where a given aggregator receives models
    sdflmq/session/<session_id>/global/store      parameter-server ingest (root aggregator output)
    sdflmq/session/<session_id>/global/update     global model dissemination to all clients
    sdflmq/session/<session_id>/status            round/readiness reports (monitoring)
"""

from __future__ import annotations

from repro.utils.identifiers import validate_identifier

__all__ = [
    "SDFLMQ_ROOT",
    "COORDINATOR_ID",
    "coordinator_call_topic",
    "client_call_topic",
    "session_broadcast_topic",
    "aggregator_params_topic",
    "global_store_topic",
    "global_update_topic",
    "session_status_topic",
    "session_wildcard",
    "presence_topic",
    "PRESENCE_WILDCARD",
]

SDFLMQ_ROOT = "sdflmq"

#: The well-known client id of the coordinator endpoint.
COORDINATOR_ID = "sdflmq_coordinator"

#: The well-known client id of the parameter server endpoint.
PARAMETER_SERVER_ID = "sdflmq_paramserver"


def coordinator_call_topic(function: str) -> str:
    """Topic on which the coordinator serves ``function``."""
    validate_identifier(function, "function name")
    return f"{SDFLMQ_ROOT}/coordinator/call/{function}"


def client_call_topic(client_id: str, function: str) -> str:
    """Private per-client control topic for ``function`` (role set/reset etc.)."""
    validate_identifier(client_id, "client id")
    validate_identifier(function, "function name")
    return f"{SDFLMQ_ROOT}/client/{client_id}/call/{function}"


def session_broadcast_topic(session_id: str) -> str:
    """Session-wide announcement topic (cluster topology, round starts)."""
    validate_identifier(session_id, "session id")
    return f"{SDFLMQ_ROOT}/session/{session_id}/broadcast"


def aggregator_params_topic(session_id: str, aggregator_id: str) -> str:
    """Topic an aggregator listens on for incoming model parameters."""
    validate_identifier(session_id, "session id")
    validate_identifier(aggregator_id, "aggregator id")
    return f"{SDFLMQ_ROOT}/session/{session_id}/aggregator/{aggregator_id}/params"


def global_store_topic(session_id: str) -> str:
    """Topic the root aggregator publishes the new global model to (parameter server ingest)."""
    validate_identifier(session_id, "session id")
    return f"{SDFLMQ_ROOT}/session/{session_id}/global/store"


def global_update_topic(session_id: str) -> str:
    """Topic the parameter server publishes the synchronized global model on."""
    validate_identifier(session_id, "session id")
    return f"{SDFLMQ_ROOT}/session/{session_id}/global/update"


def session_status_topic(session_id: str) -> str:
    """Topic carrying per-round readiness/status reports (observability)."""
    validate_identifier(session_id, "session id")
    return f"{SDFLMQ_ROOT}/session/{session_id}/status"


def session_wildcard(session_id: str) -> str:
    """Filter matching every topic of one session (used by bridges and monitors)."""
    validate_identifier(session_id, "session id")
    return f"{SDFLMQ_ROOT}/session/{session_id}/#"


#: Filter the coordinator subscribes to for client liveness updates.
PRESENCE_WILDCARD = f"{SDFLMQ_ROOT}/presence/+"


def presence_topic(client_id: str) -> str:
    """Retained liveness topic for one client.

    Clients publish a retained ``online`` marker here when they connect and
    register an ``offline`` last-will message, so the coordinator learns about
    ungraceful departures straight from the broker (standard MQTT presence
    pattern) without any polling.
    """
    validate_identifier(client_id, "client id")
    return f"{SDFLMQ_ROOT}/presence/{client_id}"
