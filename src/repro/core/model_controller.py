"""Client-side model controller.

The model controller (paper §III.B.2) keeps track of the models a client
handles, bound to the sessions the client participates in.  Every local or
global update goes through it, so the training pipeline and the aggregation
pipeline always observe a consistent view of "the model for session X":

* ``register`` binds a :class:`~repro.ml.models.ClassifierModel` to a session;
* ``snapshot_local`` captures the post-training parameters for upload (cast to
  the wire dtype, ``float32`` by default, to halve payload sizes exactly as a
  real deployment would);
* ``apply_global`` installs a received global model and bumps the version the
  client observes, which is what ``wait_global_update`` polls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.errors import ModelNotRegisteredError
from repro.ml.models import ClassifierModel
from repro.ml.state import StateDict, cast_state_dict, state_dict_nbytes

__all__ = ["ModelController", "ModelRecord"]


@dataclass
class ModelRecord:
    """Bookkeeping for one session's model on one client."""

    session_id: str
    model_name: str
    model: ClassifierModel
    wire_dtype: str = "float32"
    local_version: int = 0
    global_version: int = 0
    last_global_round: int = -1
    num_samples: int = 0
    history: Dict[int, float] = field(default_factory=dict)

    @property
    def payload_nbytes(self) -> int:
        """Size of one model upload at the configured wire dtype."""
        return state_dict_nbytes(self.model.state_dict(copy=False), self.wire_dtype)


class ModelController:
    """Per-client registry of session-bound models."""

    def __init__(self, client_id: str) -> None:
        self.client_id = client_id
        self._records: Dict[str, ModelRecord] = {}

    # -------------------------------------------------------------- registry

    def register(
        self,
        session_id: str,
        model: ClassifierModel,
        model_name: Optional[str] = None,
        num_samples: int = 0,
        wire_dtype: str = "float32",
    ) -> ModelRecord:
        """Bind ``model`` to ``session_id`` (replacing any previous binding)."""
        record = ModelRecord(
            session_id=session_id,
            model_name=model_name or model.name,
            model=model,
            wire_dtype=wire_dtype,
            num_samples=int(num_samples),
        )
        self._records[session_id] = record
        return record

    def unregister(self, session_id: str) -> bool:
        """Remove the binding for ``session_id``; returns True if it existed."""
        return self._records.pop(session_id, None) is not None

    def has_model(self, session_id: str) -> bool:
        """Whether a model is registered for ``session_id``."""
        return session_id in self._records

    def record(self, session_id: str) -> ModelRecord:
        """The :class:`ModelRecord` for ``session_id`` (raises if unregistered)."""
        record = self._records.get(session_id)
        if record is None:
            raise ModelNotRegisteredError(
                f"client {self.client_id!r} has no model registered for session {session_id!r}"
            )
        return record

    def model(self, session_id: str) -> ClassifierModel:
        """The model bound to ``session_id``."""
        return self.record(session_id).model

    def sessions(self) -> list[str]:
        """Sessions with registered models (sorted)."""
        return sorted(self._records)

    # ------------------------------------------------------------- local side

    def note_local_update(self, session_id: str, num_samples: Optional[int] = None) -> int:
        """Record that local training updated the model; returns the new local version."""
        record = self.record(session_id)
        record.local_version += 1
        if num_samples is not None:
            record.num_samples = int(num_samples)
        return record.local_version

    def snapshot_local(self, session_id: str) -> StateDict:
        """Copy the current parameters, cast to the wire dtype, for upload."""
        record = self.record(session_id)
        return cast_state_dict(record.model.state_dict(copy=False), record.wire_dtype)

    # ------------------------------------------------------------ global side

    def apply_global(self, session_id: str, state: StateDict, round_index: int) -> int:
        """Install a received global model; returns the new global version.

        Stale updates (a round index we already applied) are ignored so that
        duplicated QoS-1 deliveries cannot roll a client backwards.
        """
        record = self.record(session_id)
        if round_index <= record.last_global_round:
            return record.global_version
        # Cast back to the model's native dtype before loading.
        native = {k: np.asarray(v, dtype=np.float64) for k, v in state.items()}
        record.model.load_state_dict(native)
        record.global_version += 1
        record.last_global_round = int(round_index)
        return record.global_version

    def global_version(self, session_id: str) -> int:
        """Number of global updates applied so far for ``session_id``."""
        return self.record(session_id).global_version

    def record_metric(self, session_id: str, round_index: int, value: float) -> None:
        """Store a per-round scalar metric (test accuracy in the experiments)."""
        self.record(session_id).history[int(round_index)] = float(value)
