"""FL session state held by the coordinator.

A session (paper §III.E.1) is created when a client requests global updating
for a model, tracks the contributing clients, the round counter, the current
cluster topology, and terminates when either the round budget or the session
time budget is exhausted.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.clustering import ClusterTopology
from repro.core.errors import SessionError, SessionFullError
from repro.core.messages import ClientStatsReport, SessionRequest
from repro.sim.device import DeviceStats

__all__ = ["SessionState", "FLSession"]


class SessionState(str, enum.Enum):
    """Lifecycle states of an FL session."""

    WAITING_FOR_CONTRIBUTORS = "waiting"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"
    TERMINATED = "terminated"


@dataclass
class FLSession:
    """Coordinator-side record of one federated learning session."""

    request: SessionRequest
    created_at: float = 0.0
    state: SessionState = SessionState.WAITING_FOR_CONTRIBUTORS
    contributors: List[str] = field(default_factory=list)
    preferred_roles: Dict[str, str] = field(default_factory=dict)
    client_samples: Dict[str, int] = field(default_factory=dict)
    round_index: int = 0
    topology: Optional[ClusterTopology] = None
    stats: Dict[str, DeviceStats] = field(default_factory=dict)
    round_reports: Dict[int, Set[str]] = field(default_factory=dict)
    global_versions: int = 0
    completed_rounds: int = 0
    #: Number of mid-round restarts broadcast so far.  Stamped into every
    #: ``round_restart`` notice (and echoed by clients in their re-sent
    #: contributions) so aggregators can tell a post-restart re-send from a
    #: stale pre-restart contribution regardless of delivery interleaving.
    restart_epochs: int = 0

    # ------------------------------------------------------------- properties

    @property
    def session_id(self) -> str:
        """Identifier of the session."""
        return self.request.session_id

    @property
    def model_name(self) -> str:
        """Name of the model being trained in this session."""
        return self.request.model_name

    @property
    def capacity_min(self) -> int:
        """Minimum number of contributors before the session can start."""
        return self.request.session_capacity_min

    @property
    def capacity_max(self) -> int:
        """Maximum number of contributors the session accepts."""
        return self.request.session_capacity_max

    @property
    def fl_rounds(self) -> int:
        """Total number of FL rounds this session will run."""
        return self.request.fl_rounds

    @property
    def is_full(self) -> bool:
        """Whether the session reached its maximum capacity."""
        return len(self.contributors) >= self.capacity_max

    @property
    def has_quorum(self) -> bool:
        """Whether enough contributors joined for the session to start."""
        return len(self.contributors) >= self.capacity_min

    @property
    def is_active(self) -> bool:
        """Whether the session is still accepting work (not completed/terminated)."""
        return self.state in (
            SessionState.WAITING_FOR_CONTRIBUTORS,
            SessionState.READY,
            SessionState.RUNNING,
        )

    # ------------------------------------------------------------ membership

    def add_contributor(self, client_id: str, preferred_role: str = "trainer", num_samples: int = 0) -> int:
        """Add a contributor; returns the contributor count after joining."""
        if not self.is_active:
            raise SessionError(f"session {self.session_id!r} is not accepting contributors")
        if client_id in self.contributors:
            return len(self.contributors)
        if self.is_full:
            raise SessionFullError(
                f"session {self.session_id!r} is full ({self.capacity_max} contributors)"
            )
        self.contributors.append(client_id)
        self.preferred_roles[client_id] = preferred_role
        self.client_samples[client_id] = int(num_samples)
        if self.has_quorum and self.state == SessionState.WAITING_FOR_CONTRIBUTORS:
            self.state = SessionState.READY
        return len(self.contributors)

    def remove_contributor(self, client_id: str) -> bool:
        """Remove a contributor (e.g. it disconnected); returns True if present."""
        if client_id not in self.contributors:
            return False
        self.contributors.remove(client_id)
        self.preferred_roles.pop(client_id, None)
        self.client_samples.pop(client_id, None)
        if not self.has_quorum and self.state == SessionState.READY:
            self.state = SessionState.WAITING_FOR_CONTRIBUTORS
        return True

    # ---------------------------------------------------------------- rounds

    def begin(self) -> None:
        """Transition to RUNNING (requires quorum)."""
        if not self.has_quorum:
            raise SessionError(
                f"session {self.session_id!r} needs {self.capacity_min} contributors, "
                f"has {len(self.contributors)}"
            )
        self.state = SessionState.RUNNING

    def record_stats(self, report: ClientStatsReport) -> None:
        """Store a client's per-round stats report."""
        self.stats[report.client_id] = DeviceStats(
            device_id=report.client_id,
            round_index=report.round_index,
            available_memory_bytes=report.available_memory_bytes,
            cpu_load=report.cpu_load,
            bandwidth_bps=report.bandwidth_bps,
        )
        self.round_reports.setdefault(report.round_index, set()).add(report.client_id)

    def round_ready(self, round_index: int) -> bool:
        """Whether every contributor reported readiness for ``round_index``."""
        reported = self.round_reports.get(round_index, set())
        return set(self.contributors).issubset(reported)

    def note_global_update(self) -> int:
        """Record that a global model version was produced; returns the count."""
        self.global_versions += 1
        return self.global_versions

    def advance_round(self) -> int:
        """Mark the current round complete; returns the next round index.

        Transitions the session to COMPLETED once the round budget is spent.
        """
        if self.state != SessionState.RUNNING:
            raise SessionError(f"cannot advance a session in state {self.state.value!r}")
        self.completed_rounds += 1
        self.round_index += 1
        if self.completed_rounds >= self.fl_rounds:
            self.state = SessionState.COMPLETED
        return self.round_index

    def terminate(self, reason: str = "") -> None:
        """Force-terminate the session (time budget exhausted, operator action)."""
        if self.state in (SessionState.COMPLETED, SessionState.TERMINATED):
            return
        self.state = SessionState.TERMINATED
        _ = reason  # retained for future structured logging

    def expired(self, now: float) -> bool:
        """Whether the session passed its wall-time budget at simulated time ``now``."""
        return now - self.created_at > self.request.session_time_s
