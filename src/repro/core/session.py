"""FL session state held by the coordinator.

A session (paper §III.E.1) is created when a client requests global updating
for a model, tracks the contributing clients, the round counter, the current
cluster topology, and terminates when either the round budget or the session
time budget is exhausted.

All *round* state — the phase machine, the round counter, the restart epoch
and the participant roster — lives in the session's
:class:`~repro.core.rounds.RoundLifecycle`; :class:`FLSession` adds the
session-scoped envelope (capacity window, stats reports, global-version
bookkeeping, the time budget) and delegates the rest, so the round state has
exactly one home.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.clustering import ClusterTopology
from repro.core.errors import SessionError, SessionFullError
from repro.core.messages import ClientStatsReport, SessionRequest
from repro.core.rounds import RoundLifecycle, RoundPhase
from repro.sim.device import DeviceStats

__all__ = ["SessionState", "FLSession"]


class SessionState(str, enum.Enum):
    """Lifecycle states of an FL session."""

    WAITING_FOR_CONTRIBUTORS = "waiting"
    READY = "ready"
    RUNNING = "running"
    COMPLETED = "completed"
    TERMINATED = "terminated"


@dataclass
class FLSession:
    """Coordinator-side record of one federated learning session."""

    request: SessionRequest
    created_at: float = 0.0
    state: SessionState = SessionState.WAITING_FOR_CONTRIBUTORS
    preferred_roles: Dict[str, str] = field(default_factory=dict)
    client_samples: Dict[str, int] = field(default_factory=dict)
    topology: Optional[ClusterTopology] = None
    stats: Dict[str, DeviceStats] = field(default_factory=dict)
    round_reports: Dict[int, Set[str]] = field(default_factory=dict)
    global_versions: int = 0
    completed_rounds: int = 0
    #: The round-lifecycle state machine: phase transitions, round counter,
    #: restart epoch and the participant roster all live here.
    lifecycle: RoundLifecycle = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self.lifecycle = RoundLifecycle(self.request.session_id)

    # ------------------------------------------------------------- properties

    @property
    def session_id(self) -> str:
        """Identifier of the session."""
        return self.request.session_id

    @property
    def model_name(self) -> str:
        """Name of the model being trained in this session."""
        return self.request.model_name

    @property
    def capacity_min(self) -> int:
        """Minimum number of contributors before the session can start."""
        return self.request.session_capacity_min

    @property
    def capacity_max(self) -> int:
        """Maximum number of contributors the session accepts."""
        return self.request.session_capacity_max

    @property
    def fl_rounds(self) -> int:
        """Total number of FL rounds this session will run."""
        return self.request.fl_rounds

    @property
    def contributors(self) -> List[str]:
        """Contributing clients in join order (the lifecycle's live roster)."""
        return self.lifecycle.roster

    @property
    def round_index(self) -> int:
        """The round the session is currently in (delegated to the lifecycle)."""
        return self.lifecycle.round_index

    @property
    def restart_epochs(self) -> int:
        """Number of mid-round restarts broadcast so far.

        Stamped into every ``round_restart`` notice (and echoed by clients in
        their re-sent contributions) so aggregators can tell a post-restart
        re-send from a stale pre-restart contribution regardless of delivery
        interleaving.
        """
        return self.lifecycle.epoch

    @property
    def is_full(self) -> bool:
        """Whether the session reached its maximum capacity."""
        return len(self.contributors) >= self.capacity_max

    @property
    def has_quorum(self) -> bool:
        """Whether enough contributors joined for the session to start."""
        return len(self.contributors) >= self.capacity_min

    @property
    def is_active(self) -> bool:
        """Whether the session is still accepting work (not completed/terminated)."""
        return self.state in (
            SessionState.WAITING_FOR_CONTRIBUTORS,
            SessionState.READY,
            SessionState.RUNNING,
        )

    # ------------------------------------------------------------ membership

    def add_contributor(self, client_id: str, preferred_role: str = "trainer", num_samples: int = 0) -> int:
        """Add a contributor; returns the contributor count after joining.

        Admission is delegated to the lifecycle roster, which tolerates late
        additions mid-round (the ADMIT transition) — capacity and session
        activity are still enforced here.
        """
        if not self.is_active:
            raise SessionError(f"session {self.session_id!r} is not accepting contributors")
        if client_id in self.contributors:
            return len(self.contributors)
        if self.is_full:
            raise SessionFullError(
                f"session {self.session_id!r} is full ({self.capacity_max} contributors)"
            )
        self.lifecycle.admit(client_id)
        self.preferred_roles[client_id] = preferred_role
        self.client_samples[client_id] = int(num_samples)
        if self.has_quorum and self.state == SessionState.WAITING_FOR_CONTRIBUTORS:
            self.state = SessionState.READY
        return len(self.contributors)

    def remove_contributor(self, client_id: str) -> bool:
        """Remove a contributor (e.g. it disconnected); returns True if present."""
        if not self.lifecycle.drop(client_id):
            return False
        self.preferred_roles.pop(client_id, None)
        self.client_samples.pop(client_id, None)
        if not self.has_quorum and self.state == SessionState.READY:
            self.state = SessionState.WAITING_FOR_CONTRIBUTORS
        return True

    # ---------------------------------------------------------------- rounds

    def begin(self) -> None:
        """Transition to RUNNING (requires quorum) and open round 0."""
        if not self.has_quorum:
            raise SessionError(
                f"session {self.session_id!r} needs {self.capacity_min} contributors, "
                f"has {len(self.contributors)}"
            )
        self.state = SessionState.RUNNING
        self.lifecycle.begin_round(0)

    def record_stats(self, report: ClientStatsReport) -> None:
        """Store a client's per-round stats report."""
        self.stats[report.client_id] = DeviceStats(
            device_id=report.client_id,
            round_index=report.round_index,
            available_memory_bytes=report.available_memory_bytes,
            cpu_load=report.cpu_load,
            bandwidth_bps=report.bandwidth_bps,
        )
        self.round_reports.setdefault(report.round_index, set()).add(report.client_id)

    def round_ready(self, round_index: int) -> bool:
        """Whether every contributor reported readiness for ``round_index``."""
        reported = self.round_reports.get(round_index, set())
        return set(self.contributors).issubset(reported)

    def note_global_update(self) -> int:
        """Record that a global model version was produced; returns the count."""
        self.global_versions += 1
        if self.lifecycle.phase is RoundPhase.COLLECTING:
            self.lifecycle.global_stored()
        return self.global_versions

    def _fast_forward_lifecycle(self) -> None:
        """Catch the lifecycle up to AGGREGATING for a direct round advance.

        The coordinator reports every phase transition as it happens, but a
        session can also be driven directly (tests, simple harnesses) with
        ``begin()``/``advance_round()`` alone — fast-forward through the
        intermediate phases so the strict machine accepts the advance.
        """
        if self.lifecycle.phase is RoundPhase.PLANNING:
            self.lifecycle.roles_announced()
        if self.lifecycle.phase is RoundPhase.RESTARTED:
            self.lifecycle.resume()
        if self.lifecycle.phase is RoundPhase.COLLECTING:
            self.lifecycle.global_stored()

    def advance_round(self) -> int:
        """Mark the current round complete; returns the next round index.

        Transitions the session to COMPLETED once the round budget is spent.
        """
        if self.state != SessionState.RUNNING:
            raise SessionError(f"cannot advance a session in state {self.state.value!r}")
        self._fast_forward_lifecycle()
        self.lifecycle.advance()
        self.completed_rounds += 1
        next_round = self.lifecycle.round_index + 1
        if self.completed_rounds >= self.fl_rounds:
            # Budget spent: close out without opening a phantom round (a
            # PLANNING event for a round that never runs would reach
            # lifecycle subscribers).  The counter still advances so callers
            # observe round_index == fl_rounds after the final round.
            self.state = SessionState.COMPLETED
            self.lifecycle.round_index = next_round
            self.lifecycle.complete()
        else:
            self.lifecycle.begin_round(next_round)
        return self.lifecycle.round_index

    def terminate(self, reason: str = "") -> None:
        """Force-terminate the session (time budget exhausted, operator action)."""
        if self.state in (SessionState.COMPLETED, SessionState.TERMINATED):
            return
        self.state = SessionState.TERMINATED
        self.lifecycle.complete()
        _ = reason  # retained for future structured logging

    def expired(self, now: float) -> bool:
        """Whether the session passed its wall-time budget at simulated time ``now``."""
        return now - self.created_at > self.request.session_time_s
