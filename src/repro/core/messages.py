"""Typed message schemas exchanged between SDFLMQ components.

MQTTFC transports plain dicts; these dataclasses give the coordination
messages a typed, validated surface inside the framework while serializing to
exactly the JSON-like dicts the paper describes ("messages are sent in
customized separable text format, while session stats and cluster topologies
are encoded into JSON format").
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.roles import Role
from repro.utils.validation import require_positive

__all__ = [
    "SessionRequest",
    "SessionAck",
    "JoinRequest",
    "JoinAck",
    "RoleAssignment",
    "ClientStatsReport",
    "RoundStatus",
    "GlobalModelNotice",
]


@dataclass
class SessionRequest:
    """A client's request to create a new FL session (paper Fig. 4a)."""

    session_id: str
    model_name: str
    requester_id: str
    fl_rounds: int
    session_capacity_min: int
    session_capacity_max: int
    session_time_s: float = 3600.0
    waiting_time_s: float = 120.0
    preferred_role: str = "trainer"
    aggregation: str = "fedavg"

    def __post_init__(self) -> None:
        require_positive(self.fl_rounds, "fl_rounds")
        require_positive(self.session_capacity_min, "session_capacity_min")
        require_positive(self.session_capacity_max, "session_capacity_max")
        if self.session_capacity_max < self.session_capacity_min:
            raise ValueError(
                "session_capacity_max must be >= session_capacity_min "
                f"({self.session_capacity_max} < {self.session_capacity_min})"
            )
        require_positive(self.session_time_s, "session_time_s")
        require_positive(self.waiting_time_s, "waiting_time_s", strict=False)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize for transmission."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SessionRequest":
        """Deserialize from a received payload."""
        return cls(**data)


@dataclass
class SessionAck:
    """Coordinator's answer to a session creation request."""

    session_id: str
    accepted: bool
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SessionAck":
        return cls(**data)


@dataclass
class JoinRequest:
    """A client's request to join an existing session (paper Fig. 4b)."""

    session_id: str
    client_id: str
    model_name: str
    fl_rounds: int = 0
    preferred_role: str = "trainer"
    num_samples: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JoinRequest":
        return cls(**data)


@dataclass
class JoinAck:
    """Coordinator's answer to a join request."""

    session_id: str
    client_id: str
    accepted: bool
    reason: str = ""
    contributors: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "JoinAck":
        return cls(**data)


@dataclass
class RoleAssignment:
    """The coordinator's ``set_role`` instruction to one client.

    Carries everything the client's role arbiter needs: the role itself, which
    aggregator to send results to (``parent_id``; ``None`` means publish to the
    parameter server), how many contributions to expect if aggregating
    (``expected_contributions``), the children's ids for traceability, and the
    hierarchy level (0 = root aggregator).
    """

    session_id: str
    client_id: str
    role: str
    round_index: int
    parent_id: Optional[str] = None
    expected_contributions: int = 0
    children: List[str] = field(default_factory=list)
    level: int = 0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RoleAssignment":
        return cls(**data)

    @property
    def role_enum(self) -> Role:
        """The role as the :class:`~repro.core.roles.Role` enum."""
        return Role(self.role)


@dataclass
class ClientStatsReport:
    """Per-round readiness + stats report a client sends to the coordinator."""

    session_id: str
    client_id: str
    round_index: int
    available_memory_bytes: int = 0
    cpu_load: float = 0.0
    bandwidth_bps: float = 0.0
    num_samples: int = 0
    train_loss: float = 0.0
    local_accuracy: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClientStatsReport":
        return cls(**data)


@dataclass
class RoundStatus:
    """Coordinator-side record of one FL round's completion state."""

    session_id: str
    round_index: int
    reported_clients: List[str] = field(default_factory=list)
    global_model_stored: bool = False
    completed: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class GlobalModelNotice:
    """Announcement that a new global model version is available."""

    session_id: str
    round_index: int
    version: int
    num_contributors: int
    model_name: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GlobalModelNotice":
        return cls(**data)
