"""The clustering engine: building (hierarchical) aggregation topologies.

Given the set of contributing clients, the coordinator's clustering engine
(paper §III.D–E) selects aggregators, groups the remaining trainers into
clusters headed by those aggregators, and — for hierarchical policies — stacks
additional aggregation levels until a single root aggregator remains.  The
resulting :class:`ClusterTopology` is what role arrangement turns into
``set_role`` messages and what the delay model walks to compute the critical
path of a round.

Two policies cover the paper's evaluation:

* ``"central"`` — one cluster, one aggregator (the "SDFL with central
  aggregation" curve in Fig. 8);
* ``"hierarchical"`` — a 2-layer aggregation tree where roughly
  ``aggregator_fraction`` of the clients act as aggregators (30 % in the
  paper), one of which is promoted to root.

Arbitrary deeper hierarchies are supported through ``max_children`` — the
engine keeps adding levels while any aggregator would exceed its fan-in bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.errors import SDFLMQError
from repro.core.roles import Role
from repro.utils.validation import require_in_range, require_positive

__all__ = ["ClusterNode", "ClusterTopology", "ClusteringEngine", "ClusteringConfig"]


@dataclass
class ClusterNode:
    """One client's position within a cluster topology."""

    client_id: str
    role: Role
    level: int
    parent_id: Optional[str] = None
    children: List[str] = field(default_factory=list)

    @property
    def is_root(self) -> bool:
        """Whether this node is the root aggregator."""
        return self.parent_id is None and self.role.aggregates

    @property
    def fan_in(self) -> int:
        """Number of contributions this node waits for from its children."""
        return len(self.children)


@dataclass
class ClusterTopology:
    """A complete aggregation topology for one FL round."""

    session_id: str
    nodes: Dict[str, ClusterNode]
    root_id: str
    policy: str = "hierarchical"

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------ inspection

    @property
    def client_ids(self) -> List[str]:
        """All participating client ids (sorted)."""
        return sorted(self.nodes)

    @property
    def aggregator_ids(self) -> List[str]:
        """Ids of all clients with an aggregating role (sorted)."""
        return sorted(cid for cid, node in self.nodes.items() if node.role.aggregates)

    @property
    def trainer_ids(self) -> List[str]:
        """Ids of all clients with a training role (sorted)."""
        return sorted(cid for cid, node in self.nodes.items() if node.role.trains)

    @property
    def num_levels(self) -> int:
        """Number of distinct hierarchy levels (root = level 0)."""
        if not self.nodes:
            return 0
        return max(node.level for node in self.nodes.values()) + 1

    def node(self, client_id: str) -> ClusterNode:
        """Node for ``client_id`` (KeyError if absent)."""
        return self.nodes[client_id]

    def children_of(self, client_id: str) -> List[str]:
        """Children of ``client_id`` in the aggregation tree."""
        return list(self.nodes[client_id].children)

    def parent_of(self, client_id: str) -> Optional[str]:
        """Parent aggregator of ``client_id`` (None for the root)."""
        return self.nodes[client_id].parent_id

    def aggregators_by_level(self) -> Dict[int, List[str]]:
        """Aggregator ids grouped by hierarchy level (sorted within levels)."""
        by_level: Dict[int, List[str]] = {}
        for cid, node in self.nodes.items():
            if node.role.aggregates:
                by_level.setdefault(node.level, []).append(cid)
        return {level: sorted(ids) for level, ids in sorted(by_level.items())}

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable description published on the session broadcast topic."""
        return {
            "session_id": self.session_id,
            "root_id": self.root_id,
            "policy": self.policy,
            "nodes": {
                cid: {
                    "role": node.role.value,
                    "level": node.level,
                    "parent_id": node.parent_id,
                    "children": list(node.children),
                }
                for cid, node in self.nodes.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ClusterTopology":
        """Inverse of :meth:`to_dict`."""
        nodes = {
            cid: ClusterNode(
                client_id=cid,
                role=Role.coerce(spec["role"]),
                level=int(spec["level"]),
                parent_id=spec.get("parent_id"),
                children=list(spec.get("children", [])),
            )
            for cid, spec in dict(data["nodes"]).items()  # type: ignore[arg-type]
        }
        return cls(
            session_id=str(data["session_id"]),
            nodes=nodes,
            root_id=str(data["root_id"]),
            policy=str(data.get("policy", "hierarchical")),
        )

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check structural invariants; raises :class:`SDFLMQError` on violation."""
        if not self.nodes:
            raise SDFLMQError("cluster topology has no nodes")
        if self.root_id not in self.nodes:
            raise SDFLMQError(f"root id {self.root_id!r} is not a node")
        root = self.nodes[self.root_id]
        if not root.role.aggregates:
            raise SDFLMQError("the root node must hold an aggregating role")
        if root.parent_id is not None:
            raise SDFLMQError("the root node must not have a parent")

        for cid, node in self.nodes.items():
            if node.client_id != cid:
                raise SDFLMQError(f"node key {cid!r} disagrees with its client_id {node.client_id!r}")
            if node.parent_id is None and cid != self.root_id:
                raise SDFLMQError(f"non-root node {cid!r} has no parent")
            if node.parent_id is not None:
                parent = self.nodes.get(node.parent_id)
                if parent is None:
                    raise SDFLMQError(f"node {cid!r} references unknown parent {node.parent_id!r}")
                if not parent.role.aggregates:
                    raise SDFLMQError(f"parent {node.parent_id!r} of {cid!r} is not an aggregator")
                if cid not in parent.children:
                    raise SDFLMQError(f"parent {node.parent_id!r} does not list {cid!r} as a child")
            for child in node.children:
                if child not in self.nodes:
                    raise SDFLMQError(f"node {cid!r} lists unknown child {child!r}")
                if self.nodes[child].parent_id != cid:
                    raise SDFLMQError(f"child {child!r} does not point back to parent {cid!r}")
            if node.children and not node.role.aggregates:
                raise SDFLMQError(f"node {cid!r} has children but is not an aggregator")
            if node.role.aggregates and not node.children and len(self.nodes) > 1:
                raise SDFLMQError(f"aggregator {cid!r} has no children")

        # Reachability / acyclicity: walking up from every node must reach the root.
        for cid in self.nodes:
            seen = set()
            cursor: Optional[str] = cid
            while cursor is not None:
                if cursor in seen:
                    raise SDFLMQError(f"cycle detected in topology at {cursor!r}")
                seen.add(cursor)
                cursor = self.nodes[cursor].parent_id
            if self.root_id not in seen:
                raise SDFLMQError(f"node {cid!r} cannot reach the root")


@dataclass(frozen=True)
class ClusteringConfig:
    """Parameters controlling topology construction.

    Attributes
    ----------
    policy:
        ``"hierarchical"`` or ``"central"``.
    aggregator_fraction:
        Fraction of clients acting as aggregators under the hierarchical
        policy (the paper uses 0.30).
    max_children:
        Upper bound on any aggregator's fan-in; additional hierarchy levels
        are introduced when the bound would be exceeded.  ``0`` disables the
        bound (the paper's 2-layer configuration).
    aggregators_train:
        Whether selected aggregators also act as trainers
        (trainer/aggregator role), as in the paper's evaluation.
    """

    policy: str = "hierarchical"
    aggregator_fraction: float = 0.30
    max_children: int = 0
    aggregators_train: bool = True

    def __post_init__(self) -> None:
        if self.policy not in ("hierarchical", "central"):
            raise ValueError(f"unknown clustering policy {self.policy!r}")
        require_in_range(self.aggregator_fraction, "aggregator_fraction", 0.0, 1.0, inclusive=False)
        if self.max_children < 0:
            raise ValueError("max_children must be >= 0")


class ClusteringEngine:
    """Builds :class:`ClusterTopology` objects from client lists and preferences."""

    def __init__(self, config: ClusteringConfig | None = None) -> None:
        self.config = config or ClusteringConfig()

    # --------------------------------------------------------------- helpers

    @staticmethod
    def _role_for_aggregator(config: ClusteringConfig) -> Role:
        return Role.TRAINER_AGGREGATOR if config.aggregators_train else Role.AGGREGATOR

    def num_aggregators(self, num_clients: int) -> int:
        """Number of aggregators the hierarchical policy selects for ``num_clients``."""
        require_positive(num_clients, "num_clients")
        if self.config.policy == "central":
            return 1
        return max(1, int(round(num_clients * self.config.aggregator_fraction)))

    # ------------------------------------------------------------------ build

    def build(
        self,
        session_id: str,
        client_ids: Sequence[str],
        aggregator_ids: Optional[Sequence[str]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> ClusterTopology:
        """Build a topology over ``client_ids``.

        Parameters
        ----------
        session_id:
            Session the topology belongs to.
        client_ids:
            All contributing clients.
        aggregator_ids:
            Pre-selected aggregators (e.g. from the load balancer's optimizer).
            When omitted, aggregators are chosen deterministically from the
            client order (shuffled by ``rng`` if given).
        rng:
            Optional generator used only when aggregators are not pre-selected.
        """
        clients = list(dict.fromkeys(client_ids))
        if not clients:
            raise SDFLMQError("cannot build a topology with zero clients")
        if len(clients) == 1:
            only = clients[0]
            node = ClusterNode(client_id=only, role=Role.TRAINER_AGGREGATOR, level=0, children=[only])
            # A single client both trains and "aggregates" its own update; model
            # it as a root with itself as child is confusing, so special-case:
            node.children = []
            node.role = Role.TRAINER_AGGREGATOR
            topology = ClusterTopology.__new__(ClusterTopology)
            topology.session_id = session_id
            topology.nodes = {only: node}
            topology.root_id = only
            topology.policy = self.config.policy
            return topology

        if self.config.policy == "central":
            return self._build_central(session_id, clients, aggregator_ids)
        return self._build_hierarchical(session_id, clients, aggregator_ids, rng)

    def _select_aggregators(
        self,
        clients: List[str],
        count: int,
        aggregator_ids: Optional[Sequence[str]],
        rng: Optional[np.random.Generator],
    ) -> List[str]:
        if aggregator_ids:
            selected = [cid for cid in aggregator_ids if cid in clients][:count]
            if not selected:
                raise SDFLMQError("none of the requested aggregators are session contributors")
            # Top up deterministically if the optimizer supplied too few.
            for cid in clients:
                if len(selected) >= count:
                    break
                if cid not in selected:
                    selected.append(cid)
            return selected
        pool = list(clients)
        if rng is not None:
            rng.shuffle(pool)
        return pool[:count]

    def _build_central(
        self,
        session_id: str,
        clients: List[str],
        aggregator_ids: Optional[Sequence[str]],
    ) -> ClusterTopology:
        root = self._select_aggregators(clients, 1, aggregator_ids, None)[0]
        nodes: Dict[str, ClusterNode] = {}
        children = [cid for cid in clients if cid != root]
        nodes[root] = ClusterNode(
            client_id=root,
            role=self._role_for_aggregator(self.config),
            level=0,
            parent_id=None,
            children=children,
        )
        for cid in children:
            nodes[cid] = ClusterNode(client_id=cid, role=Role.TRAINER, level=1, parent_id=root)
        return ClusterTopology(session_id=session_id, nodes=nodes, root_id=root, policy="central")

    def _build_hierarchical(
        self,
        session_id: str,
        clients: List[str],
        aggregator_ids: Optional[Sequence[str]],
        rng: Optional[np.random.Generator],
    ) -> ClusterTopology:
        count = min(self.num_aggregators(len(clients)), len(clients) - 1) or 1
        aggregators = self._select_aggregators(clients, count, aggregator_ids, rng)
        trainers = [cid for cid in clients if cid not in aggregators]
        if not trainers:
            # Degenerate: everyone is an aggregator; demote all but one.
            trainers = aggregators[1:]
            aggregators = aggregators[:1]

        nodes: Dict[str, ClusterNode] = {}
        agg_role = self._role_for_aggregator(self.config)

        # Root is the first aggregator; remaining aggregators form level 1,
        # trainers level 2 — the paper's three-layer / "2-layer hierarchical
        # aggregation" arrangement (two layers *of aggregation*).
        root = aggregators[0]
        intermediates = aggregators[1:]

        if not intermediates:
            # Only one aggregator selected — identical to central.
            return self._build_central(session_id, clients, [root])

        nodes[root] = ClusterNode(client_id=root, role=agg_role, level=0, parent_id=None, children=[])
        for agg in intermediates:
            nodes[agg] = ClusterNode(client_id=agg, role=agg_role, level=1, parent_id=root, children=[])
            nodes[root].children.append(agg)

        # Deal trainers round-robin across the intermediate aggregators so
        # cluster sizes differ by at most one.
        for index, trainer in enumerate(trainers):
            head = intermediates[index % len(intermediates)]
            nodes[trainer] = ClusterNode(client_id=trainer, role=Role.TRAINER, level=2, parent_id=head)
            nodes[head].children.append(trainer)

        # Any intermediate aggregator left without children (more aggregators
        # than trainers) is demoted to a plain trainer under the root so that
        # the "every aggregator has children" invariant holds.
        for agg in intermediates:
            if not nodes[agg].children:
                nodes[agg].role = Role.TRAINER
                nodes[agg].level = 1

        # Optionally split over-full clusters into deeper levels.
        if self.config.max_children > 0:
            self._enforce_fanout(nodes, root, agg_role)

        return ClusterTopology(session_id=session_id, nodes=nodes, root_id=root, policy="hierarchical")

    def _enforce_fanout(self, nodes: Dict[str, ClusterNode], root: str, agg_role: Role) -> None:
        """Split any aggregator whose fan-in exceeds ``max_children``.

        Splitting promotes some of the over-full aggregator's trainer children
        into trainer/aggregator sub-heads, pushing the extra fan-in one level
        deeper.  This terminates because each pass strictly reduces the
        maximum fan-in above the bound.
        """
        bound = self.config.max_children
        changed = True
        while changed:
            changed = False
            for agg_id in [cid for cid, n in nodes.items() if n.role.aggregates]:
                node = nodes[agg_id]
                if len(node.children) <= bound:
                    continue
                trainer_children = [c for c in node.children if not nodes[c].role.aggregates]
                if len(trainer_children) < 2:
                    continue
                # Promote the first trainer child to a sub-aggregator and move
                # the overflowing trainers beneath it.
                promoted = trainer_children[0]
                overflow = trainer_children[1 : 1 + (len(node.children) - bound)]
                if not overflow:
                    continue
                nodes[promoted].role = agg_role
                for moved in overflow:
                    node.children.remove(moved)
                    nodes[moved].parent_id = promoted
                    nodes[moved].level = nodes[promoted].level + 1
                    nodes[promoted].children.append(moved)
                changed = True
