"""Role-optimization policies (the coordinator's pluggable "optimizers").

The paper's load balancer runs a modular optimizer each round to decide which
clients should host aggregation for the next round (§III.E.6).  Each policy
implements a single method, :meth:`RoleOptimizationPolicy.select_aggregators`,
ranking the candidate clients and returning the chosen aggregator ids in
priority order (the first returned id becomes the root aggregator).

Policies included:

* :class:`StaticPolicy` — keep the current aggregators (baseline / ablation);
* :class:`RandomPolicy` — uniformly random choice each round;
* :class:`RoundRobinPolicy` — rotate the aggregator set to spread energy and
  memory wear across the fleet (the paper's "avoid device exhaustion");
* :class:`MemoryAwarePolicy` — rank by reported available memory;
* :class:`CompositeScorePolicy` — weighted score over memory, bandwidth and
  CPU headroom ("one optimizer would process the merits of the clients based
  only on their systematic characteristics");
* :class:`GeneticPolicy` — a small genetic algorithm over aggregator subsets,
  optimizing a black-box fitness (the paper lists GA/swarm optimization as a
  key planned expansion; including it here exercises that extension point).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.sim.device import DeviceStats
from repro.utils.validation import require_in_range, require_positive

__all__ = [
    "RoleOptimizationPolicy",
    "StaticPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "MemoryAwarePolicy",
    "CompositeScorePolicy",
    "GeneticPolicy",
    "get_policy",
    "available_policies",
]


class RoleOptimizationPolicy:
    """Base class for aggregator-selection policies."""

    name = "base"

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        """Return ``num_aggregators`` client ids in priority order."""
        raise NotImplementedError

    @staticmethod
    def _validate(candidates: Sequence[str], num_aggregators: int) -> List[str]:
        pool = list(dict.fromkeys(candidates))
        if not pool:
            raise ValueError("no candidate clients to select aggregators from")
        require_positive(num_aggregators, "num_aggregators")
        if num_aggregators > len(pool):
            raise ValueError(
                f"requested {num_aggregators} aggregators from only {len(pool)} candidates"
            )
        return pool


class StaticPolicy(RoleOptimizationPolicy):
    """Keep the existing aggregators; fill any gap from the candidate order."""

    name = "static"

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        pool = self._validate(candidates, num_aggregators)
        selected = [cid for cid in current_aggregators if cid in pool][:num_aggregators]
        for cid in pool:
            if len(selected) >= num_aggregators:
                break
            if cid not in selected:
                selected.append(cid)
        return selected


class RandomPolicy(RoleOptimizationPolicy):
    """Uniformly random aggregator choice, reseeded per round for determinism."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        pool = self._validate(candidates, num_aggregators)
        rng = np.random.default_rng(self.seed + round_index)
        chosen = rng.choice(len(pool), size=num_aggregators, replace=False)
        return [pool[i] for i in chosen]


class RoundRobinPolicy(RoleOptimizationPolicy):
    """Rotate the aggregator window over the (sorted) candidate list each round."""

    name = "round_robin"

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        pool = sorted(self._validate(candidates, num_aggregators))
        start = (round_index * num_aggregators) % len(pool)
        rotated = pool[start:] + pool[:start]
        return rotated[:num_aggregators]


class MemoryAwarePolicy(RoleOptimizationPolicy):
    """Pick the clients with the most reported available memory."""

    name = "memory_aware"

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        pool = self._validate(candidates, num_aggregators)
        # Sort descending by available memory; unknown clients sort last.  The
        # client id tie-break keeps the ordering deterministic.
        ranked = sorted(
            pool,
            key=lambda cid: (-(stats[cid].available_memory_bytes if cid in stats else -1), cid),
        )
        return ranked[:num_aggregators]


@dataclass
class CompositeScorePolicy(RoleOptimizationPolicy):
    """Weighted score over memory, bandwidth and CPU headroom.

    The score of client *i* is ``w_mem · mem_i + w_bw · bw_i + w_cpu ·
    (1 − load_i)`` with each term min-max normalized over the candidate set,
    so weights express relative importance rather than units.
    """

    memory_weight: float = 0.5
    bandwidth_weight: float = 0.3
    cpu_weight: float = 0.2

    name = "composite"

    def __post_init__(self) -> None:
        for value, label in (
            (self.memory_weight, "memory_weight"),
            (self.bandwidth_weight, "bandwidth_weight"),
            (self.cpu_weight, "cpu_weight"),
        ):
            require_in_range(value, label, 0.0, 1.0)
        if self.memory_weight + self.bandwidth_weight + self.cpu_weight <= 0:
            raise ValueError("at least one scoring weight must be positive")

    @staticmethod
    def _normalize(values: np.ndarray) -> np.ndarray:
        span = values.max() - values.min()
        if span <= 0:
            return np.zeros_like(values)
        return (values - values.min()) / span

    def scores(self, candidates: Sequence[str], stats: Dict[str, DeviceStats]) -> Dict[str, float]:
        """Per-candidate composite scores (exposed for tests and diagnostics)."""
        pool = list(candidates)
        memory = np.array(
            [stats[cid].available_memory_bytes if cid in stats else 0.0 for cid in pool], dtype=float
        )
        bandwidth = np.array(
            [stats[cid].bandwidth_bps if cid in stats else 0.0 for cid in pool], dtype=float
        )
        headroom = np.array(
            [1.0 - stats[cid].cpu_load if cid in stats else 0.0 for cid in pool], dtype=float
        )
        total = (
            self.memory_weight * self._normalize(memory)
            + self.bandwidth_weight * self._normalize(bandwidth)
            + self.cpu_weight * self._normalize(headroom)
        )
        return dict(zip(pool, total.tolist()))

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        pool = self._validate(candidates, num_aggregators)
        scores = self.scores(pool, stats)
        ranked = sorted(pool, key=lambda cid: (-scores[cid], cid))
        return ranked[:num_aggregators]


class GeneticPolicy(RoleOptimizationPolicy):
    """Genetic-algorithm search over aggregator subsets.

    The fitness of a subset defaults to the sum of composite scores of its
    members, but any callable ``fitness(subset, stats) -> float`` can be
    supplied — making the policy usable as the black-box optimizer the paper
    proposes for dynamic aggregation placement.
    """

    name = "genetic"

    def __init__(
        self,
        population_size: int = 24,
        generations: int = 12,
        mutation_rate: float = 0.15,
        seed: int = 0,
        fitness: Optional[Callable[[Sequence[str], Dict[str, DeviceStats]], float]] = None,
    ) -> None:
        require_positive(population_size, "population_size")
        require_positive(generations, "generations")
        require_in_range(mutation_rate, "mutation_rate", 0.0, 1.0)
        self.population_size = int(population_size)
        self.generations = int(generations)
        self.mutation_rate = float(mutation_rate)
        self.seed = int(seed)
        self._fitness = fitness
        self._scorer = CompositeScorePolicy()

    def _default_fitness(self, subset: Sequence[str], stats: Dict[str, DeviceStats]) -> float:
        scores = self._scorer.scores(list(stats) or list(subset), stats)
        return float(sum(scores.get(cid, 0.0) for cid in subset))

    def select_aggregators(
        self,
        candidates: Sequence[str],
        num_aggregators: int,
        stats: Dict[str, DeviceStats],
        current_aggregators: Sequence[str] = (),
        round_index: int = 0,
    ) -> List[str]:
        pool = self._validate(candidates, num_aggregators)
        if num_aggregators == len(pool):
            return list(pool)
        fitness = self._fitness or self._default_fitness
        rng = np.random.default_rng(self.seed + round_index)
        indices = np.arange(len(pool))

        def random_subset() -> np.ndarray:
            return rng.choice(indices, size=num_aggregators, replace=False)

        population = [random_subset() for _ in range(self.population_size)]
        if current_aggregators:
            seeded = np.array(
                [pool.index(cid) for cid in current_aggregators if cid in pool][:num_aggregators]
            )
            if len(seeded) == num_aggregators:
                population[0] = seeded

        def evaluate(subset: np.ndarray) -> float:
            return fitness([pool[i] for i in subset], stats)

        for _generation in range(self.generations):
            scored = sorted(population, key=evaluate, reverse=True)
            elite = scored[: max(2, self.population_size // 4)]
            next_population = list(elite)
            while len(next_population) < self.population_size:
                pa, pb = rng.choice(len(elite), size=2, replace=True)
                parent_a, parent_b = elite[int(pa)], elite[int(pb)]
                merged = np.unique(np.concatenate([parent_a, parent_b]))
                rng.shuffle(merged)
                child = merged[:num_aggregators]
                while len(child) < num_aggregators:
                    extra = rng.choice(indices)
                    if extra not in child:
                        child = np.append(child, extra)
                if rng.random() < self.mutation_rate:
                    victim = rng.integers(0, num_aggregators)
                    replacement = rng.choice(indices)
                    if replacement not in child:
                        child[victim] = replacement
                next_population.append(np.sort(child))
            population = next_population

        best = max(population, key=evaluate)
        ranked = sorted(
            (pool[i] for i in best),
            key=lambda cid: (-(stats[cid].available_memory_bytes if cid in stats else 0), cid),
        )
        return ranked


_POLICIES: Dict[str, Callable[..., RoleOptimizationPolicy]] = {
    StaticPolicy.name: StaticPolicy,
    RandomPolicy.name: RandomPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    MemoryAwarePolicy.name: MemoryAwarePolicy,
    CompositeScorePolicy.name: CompositeScorePolicy,
    GeneticPolicy.name: GeneticPolicy,
}


def available_policies() -> List[str]:
    """Names of all registered role-optimization policies."""
    return sorted(_POLICIES)


def get_policy(name: str, **kwargs) -> RoleOptimizationPolicy:
    """Instantiate a policy by name."""
    key = name.lower()
    if key not in _POLICIES:
        raise ValueError(f"unknown role policy {name!r}; available: {available_policies()}")
    return _POLICIES[key](**kwargs)
