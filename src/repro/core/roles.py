"""Client roles in the SDFLMQ ecosystem.

The paper (§III.C) defines three primary roles a contributing client can hold
in a session: *Trainer*, *Aggregator*, and *Trainer/Aggregator*.  The enum
below also includes *Idle* (joined a session but not selected for the current
round — relevant when sessions are over-subscribed) so role transitions are
always explicit.
"""

from __future__ import annotations

import enum

__all__ = ["Role"]


class Role(str, enum.Enum):
    """Roles a client can hold within one FL session round."""

    TRAINER = "trainer"
    AGGREGATOR = "aggregator"
    TRAINER_AGGREGATOR = "trainer_aggregator"
    IDLE = "idle"

    @property
    def trains(self) -> bool:
        """Whether a client in this role performs local training."""
        return self in (Role.TRAINER, Role.TRAINER_AGGREGATOR)

    @property
    def aggregates(self) -> bool:
        """Whether a client in this role accepts and reduces peer models."""
        return self in (Role.AGGREGATOR, Role.TRAINER_AGGREGATOR)

    @classmethod
    def coerce(cls, value: "Role | str") -> "Role":
        """Accept either the enum or its string value."""
        if isinstance(value, Role):
            return value
        try:
            return cls(value)
        except ValueError as exc:
            raise ValueError(
                f"unknown role {value!r}; expected one of {[r.value for r in cls]}"
            ) from exc
