"""SDFLMQ core: the paper's primary contribution.

The core package contains the three runtime components (client, coordinator,
parameter server), the coordination machinery they share (sessions, roles,
clustering, load balancing, aggregation strategies) and the topic scheme that
binds everything to MQTT.
"""

from repro.core.aggregation import (
    AggregationStrategy,
    ContributionBuffer,
    FedAvg,
    UniformAverage,
    CoordinateMedian,
    TrimmedMean,
    FedAvgMomentum,
    ModelContribution,
    get_aggregator,
    available_aggregators,
)
from repro.core.client import SDFLMQClient, SessionParticipation
from repro.core.clustering import ClusteringConfig, ClusteringEngine, ClusterNode, ClusterTopology
from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.errors import (
    SDFLMQError,
    SessionError,
    SessionFullError,
    SessionNotFoundError,
    DuplicateSessionError,
    RoleError,
    AggregationError,
    ModelNotRegisteredError,
)
from repro.core.load_balancer import LoadBalancer, RebalanceResult
from repro.core.messages import (
    SessionRequest,
    SessionAck,
    JoinRequest,
    JoinAck,
    RoleAssignment,
    ClientStatsReport,
    GlobalModelNotice,
)
from repro.core.model_controller import ModelController, ModelRecord
from repro.core.parameter_server import ParameterServer, GlobalModelRecord
from repro.core.role_arbiter import RoleArbiter, RoleState, TopicChange
from repro.core.role_optimizers import (
    RoleOptimizationPolicy,
    StaticPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    MemoryAwarePolicy,
    CompositeScorePolicy,
    GeneticPolicy,
    get_policy,
    available_policies,
)
from repro.core.roles import Role
from repro.core.rounds import (
    ClientRoundView,
    LifecycleEvent,
    RoundLifecycle,
    RoundLifecycleError,
    RoundPhase,
)
from repro.core.session import FLSession, SessionState
from repro.core import topics

__all__ = [
    "AggregationStrategy",
    "FedAvg",
    "UniformAverage",
    "CoordinateMedian",
    "TrimmedMean",
    "FedAvgMomentum",
    "ModelContribution",
    "get_aggregator",
    "available_aggregators",
    "SDFLMQClient",
    "SessionParticipation",
    "ClusteringConfig",
    "ClusteringEngine",
    "ClusterNode",
    "ClusterTopology",
    "Coordinator",
    "CoordinatorConfig",
    "SDFLMQError",
    "SessionError",
    "SessionFullError",
    "SessionNotFoundError",
    "DuplicateSessionError",
    "RoleError",
    "AggregationError",
    "ModelNotRegisteredError",
    "LoadBalancer",
    "RebalanceResult",
    "SessionRequest",
    "SessionAck",
    "JoinRequest",
    "JoinAck",
    "RoleAssignment",
    "ClientStatsReport",
    "GlobalModelNotice",
    "ModelController",
    "ModelRecord",
    "ParameterServer",
    "GlobalModelRecord",
    "RoleArbiter",
    "RoleState",
    "TopicChange",
    "RoleOptimizationPolicy",
    "StaticPolicy",
    "RandomPolicy",
    "RoundRobinPolicy",
    "MemoryAwarePolicy",
    "CompositeScorePolicy",
    "GeneticPolicy",
    "get_policy",
    "available_policies",
    "Role",
    "ClientRoundView",
    "ContributionBuffer",
    "LifecycleEvent",
    "RoundLifecycle",
    "RoundLifecycleError",
    "RoundPhase",
    "FLSession",
    "SessionState",
    "topics",
]
