"""The SDFLMQ client — the public API a training pipeline embeds.

This mirrors the paper's ``SDFLMQ_Client`` (Listing 1): a handful of calls —
``create_fl_session`` / ``join_fl_session``, ``set_model``, ``send_local``,
``wait_global_update`` — wrap everything needed to contribute to a
semi-decentralized FL session over MQTT.  Internally the client contains:

* a *role arbiter* tracking which role the coordinator assigned for each
  session and which role topics to (un)subscribe to,
* a *model controller* holding the session-bound models and applying global
  updates,
* an *aggregation pipeline* that buffers peer contributions when the client
  holds an aggregating role, reduces them with the session's aggregation
  strategy, and forwards the result to the parent aggregator or — at the root
  — to the parameter server,
* an MQTTFC endpoint carrying all of the above as topic-bound function calls.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.aggregation import (
    AggregationStrategy,
    ContributionBuffer,
    ModelContribution,
    get_aggregator,
)
from repro.core.errors import RoleError, SDFLMQError
from repro.core.messages import ClientStatsReport, JoinRequest, RoleAssignment, SessionRequest
from repro.core.model_controller import ModelController
from repro.core.role_arbiter import RoleArbiter, TopicChange
from repro.core.roles import Role
from repro.core.rounds import ClientRoundView
from repro.core.topics import (
    aggregator_params_topic,
    client_call_topic,
    coordinator_call_topic,
    global_store_topic,
    global_update_topic,
    presence_topic,
    session_broadcast_topic,
)
from repro.ml.models import ClassifierModel
from repro.ml.state import StateDict
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient
from repro.mqttfc.codecs import CODEC_WIRE_KEY, UpdateCodec, is_encoded_state
from repro.mqttfc.compression import CompressionConfig
from repro.mqttfc.rfc import FleetControlEndpoint, PendingCall
from repro.sim.device import DeviceStats
from repro.sim.resources import ResourceAccountant
from repro.utils.identifiers import validate_identifier

__all__ = ["SDFLMQClient", "SessionParticipation"]


class SessionParticipation:
    """Client-side view of one session it contributes to.

    Round state (current round, restart epoch, upload/await bookkeeping)
    lives in :attr:`rounds` — the client's message-derived
    :class:`~repro.core.rounds.ClientRoundView` of the coordinator's round
    lifecycle — and the aggregation inbox lives in :attr:`buffer`
    (:class:`~repro.core.aggregation.ContributionBuffer`).  The flat
    attribute surface (``current_round``, ``restart_epoch``,
    ``pending_contributions``, …) is preserved as delegating properties.
    """

    def __init__(
        self,
        session_id: str,
        model_name: str,
        fl_rounds: int,
        aggregation: str = "fedavg",
        owner_id: str = "?",
        resources: Optional[ResourceAccountant] = None,
    ) -> None:
        self.session_id = session_id
        self.model_name = model_name
        self.fl_rounds = fl_rounds
        self.aggregation = aggregation
        self.rounds = ClientRoundView()
        self.buffer = ContributionBuffer(owner_id, resources=resources)
        self.aggregations_performed = 0

    # Flat legacy surface, delegated to the view / buffer --------------------

    @property
    def current_round(self) -> int:
        """The FL round this client believes the session is in."""
        return self.rounds.current_round

    @current_round.setter
    def current_round(self, value: int) -> None:
        self.rounds.current_round = int(value)

    @property
    def restart_epoch(self) -> int:
        """Highest ``round_restart`` epoch processed (stale contributions are dropped)."""
        return self.rounds.restart_epoch

    @property
    def awaited_global_version(self) -> int:
        """Global model version the client expects after its last upload."""
        return self.rounds.awaited_global_version

    @property
    def own_contribution_sent(self) -> bool:
        """Whether this round's own update already entered the local buffer."""
        return self.rounds.own_contribution_sent

    @property
    def uploads_sent(self) -> int:
        """Local updates uploaded so far (including restart re-sends)."""
        return self.rounds.uploads_sent

    @property
    def completed(self) -> bool:
        """Whether the coordinator announced session completion."""
        return self.rounds.completed

    @property
    def pending_contributions(self) -> List[ModelContribution]:
        """Buffered peer contributions (the buffer's live list)."""
        return self.buffer.pending

    @property
    def buffered_bytes(self) -> int:
        """Bytes of contribution state currently buffered."""
        return self.buffer.buffered_bytes


class SDFLMQClient:
    """A federated-learning client speaking the SDFLMQ choreography.

    Parameters
    ----------
    client_id:
        Unique, topic-safe identifier (``myID`` in the paper's listing).
    broker:
        The in-process broker to connect to (stands in for
        ``broker_ip``/``broker_port``).
    preferred_role:
        The role the client volunteers for (``trainer``, ``aggregator`` or
        ``trainer_aggregator``); the coordinator makes the final decision.
    aggregation:
        Default aggregation strategy used when this client acts as an
        aggregator (sessions may override it via the topology broadcast).
    compression:
        MQTTFC compression policy for model payloads.
    stats_provider:
        Optional callable returning a :class:`DeviceStats` snapshot; used to
        fill the per-round readiness report (the psutil stand-in).
    resources:
        Optional :class:`ResourceAccountant` used to charge buffered peer
        models against this device's memory.
    pump:
        Optional callable that pumps the whole broker until quiescent; the
        deterministic runtime injects it so blocking-style calls
        (``wait_global_update``) can make progress.
    update_codec:
        Update-compression codec spec applied to contributions on the wire
        (``"none"``, ``"fp16"``, ``"int8"``, ``"topk[=d]"``, ``"delta"`` or a
        ``+``-composed pipeline such as ``"delta+int8"``).  Every session
        participant must run the same codec.
    """

    def __init__(
        self,
        client_id: str,
        broker: Optional[MQTTBroker] = None,
        preferred_role: str = "trainer",
        aggregation: str = "fedavg",
        compression: Optional[CompressionConfig] = None,
        chunk_bytes: int = 256 * 1024,
        stats_provider: Optional[Callable[[], DeviceStats]] = None,
        resources: Optional[ResourceAccountant] = None,
        pump: Optional[Callable[[], int]] = None,
        update_codec: Optional[str] = None,
    ) -> None:
        self.client_id = validate_identifier(client_id, "client id")
        self.preferred_role = Role.coerce(preferred_role).value if preferred_role else "trainer"
        self.default_aggregation = aggregation
        self.mqtt = MQTTClient(client_id)
        self.endpoint = FleetControlEndpoint(
            self.mqtt,
            chunk_bytes=chunk_bytes,
            compression=compression,
            update_codec=update_codec,
        )
        self.arbiter = RoleArbiter(client_id)
        self.models = ModelController(client_id)
        self.stats_provider = stats_provider
        self.resources = resources
        self.pump = pump

        self._sessions: Dict[str, SessionParticipation] = {}
        self._aggregators: Dict[str, AggregationStrategy] = {}
        self.bytes_uploaded = 0
        self.bytes_aggregated = 0
        #: Optional hook fired after a coordinator ``set_role`` is applied
        #: (``hook(client_id, session_id, assignment)``).  The experiment
        #: harness uses it to trigger a mid-round-admitted client's first
        #: upload once it actually holds a role.
        self.on_role_assigned: Optional[Callable[[str, str, RoleAssignment], None]] = None

        # Private control functions every client serves.
        self.endpoint.register("set_role", self._handle_set_role, client_call_topic(client_id, "set_role"))
        self.endpoint.register(
            "reset_role", self._handle_reset_role, client_call_topic(client_id, "reset_role")
        )

        if broker is not None:
            self.connect(broker)

    # ------------------------------------------------------------ connection

    def connect(self, broker: MQTTBroker) -> None:
        """Connect to the broker and activate the MQTTFC endpoint.

        The client registers an ``offline`` last-will on its presence topic and
        publishes a retained ``online`` marker, so the coordinator notices
        ungraceful departures through the broker itself (no polling).
        """
        if not self.mqtt.connected:
            self.mqtt.will_set(presence_topic(self.client_id), b"offline", qos=1, retain=True)
            self.mqtt.connect(broker)
        self.endpoint.start()
        self.mqtt.subscribe(client_call_topic(self.client_id, "set_role"), self.endpoint.qos)
        self.mqtt.subscribe(client_call_topic(self.client_id, "reset_role"), self.endpoint.qos)
        self.mqtt.publish(presence_topic(self.client_id), b"online", qos=1, retain=True)

    def leave(self) -> None:
        """Gracefully announce departure and disconnect.

        Unlike an ungraceful drop, this publishes the ``offline`` marker
        explicitly so the coordinator can remove the client immediately.
        """
        if self.mqtt.connected:
            self.mqtt.publish(presence_topic(self.client_id), b"offline", qos=1, retain=True)
        self.disconnect(unexpected=False)

    def disconnect(self, unexpected: bool = False) -> None:
        """Disconnect from the broker."""
        self.mqtt.disconnect(unexpected=unexpected)

    def loop(self) -> int:
        """Process pending messages for this client only; returns the count."""
        return self.mqtt.loop()

    def _pump(self) -> None:
        if self.pump is not None:
            self.pump()
        else:
            self.mqtt.loop_until_empty()

    @property
    def update_codec(self) -> Optional[UpdateCodec]:
        """The endpoint's update-compression codec (None when disabled)."""
        return self.endpoint.update_codec

    # ------------------------------------------------------------ public API

    def create_fl_session(
        self,
        session_id: str,
        fl_rounds: int,
        model_name: str,
        session_capacity_min: int,
        session_capacity_max: int,
        session_time_s: float = 3600.0,
        waiting_time_s: float = 120.0,
        preferred_role: Optional[str] = None,
        aggregation: Optional[str] = None,
    ) -> PendingCall:
        """Request creation of a new FL session (paper Fig. 4a / Listing 1 line 19).

        Returns the pending MQTTFC call; when a message pump is attached the
        call is pumped to completion before returning.
        """
        request = SessionRequest(
            session_id=session_id,
            model_name=model_name,
            requester_id=self.client_id,
            fl_rounds=fl_rounds,
            session_capacity_min=session_capacity_min,
            session_capacity_max=session_capacity_max,
            session_time_s=session_time_s,
            waiting_time_s=waiting_time_s,
            preferred_role=preferred_role or self.preferred_role,
            aggregation=aggregation or self.default_aggregation,
        )
        self._ensure_participation(session_id, model_name, fl_rounds, request.aggregation)
        call = self.endpoint.call_topic(
            coordinator_call_topic("new_fl_session"), "new_fl_session", request.to_dict()
        )
        if self.pump is not None:
            self._pump()
        return call

    def join_fl_session(
        self,
        session_id: str,
        fl_rounds: int,
        model_name: str,
        preferred_role: Optional[str] = None,
        num_samples: int = 0,
    ) -> PendingCall:
        """Request to join an existing session (paper Fig. 4b / Listing 1 line 29)."""
        join = JoinRequest(
            session_id=session_id,
            client_id=self.client_id,
            model_name=model_name,
            fl_rounds=fl_rounds,
            preferred_role=preferred_role or self.preferred_role,
            num_samples=num_samples,
        )
        self._ensure_participation(session_id, model_name, fl_rounds, self.default_aggregation)
        call = self.endpoint.call_topic(
            coordinator_call_topic("join_fl_session"), "join_fl_session", join.to_dict()
        )
        if self.pump is not None:
            self._pump()
        return call

    def set_model(self, session_id: str, model: ClassifierModel, num_samples: int = 0) -> None:
        """Bind the locally trained model object to a session (Listing 1 line 50)."""
        participation = self._participation(session_id)
        self.models.register(
            session_id, model, model_name=participation.model_name, num_samples=num_samples
        )

    def send_local(self, session_id: str) -> int:
        """Send the local model update for global aggregation (Listing 1 line 51).

        Returns the payload size in bytes.  Aggregating clients contribute to
        their own buffer directly (no self-directed MQTT traffic); trainer
        clients publish to their parent aggregator's params topic.
        """
        participation = self._participation(session_id)
        record = self.models.record(session_id)
        state = self.models.snapshot_local(session_id)
        self.models.note_local_update(session_id)
        weight = float(max(1, record.num_samples))
        participation.rounds.note_upload(self.models.global_version(session_id))

        contribution = ModelContribution(
            state=state,
            weight=weight,
            sender_id=self.client_id,
            round_index=participation.current_round,
            epoch=participation.restart_epoch,
        )
        payload_bytes = contribution.nbytes  # cached by the contribution, one walk
        self.bytes_uploaded += payload_bytes
        role_state = self.arbiter.state(session_id) if self.arbiter.has_session(session_id) else None
        if role_state is not None and role_state.role.aggregates:
            participation.rounds.own_contribution_sent = True
            self._buffer_contribution(session_id, contribution, charge_memory=False)
        else:
            parent = role_state.parent_id if role_state is not None else None
            if parent is None:
                raise RoleError(
                    f"client {self.client_id!r} has no role/parent for session {session_id!r}; "
                    "did the coordinator arrange roles yet?"
                )
            self._publish_contribution(session_id, parent, contribution)
        return payload_bytes

    def wait_global_update(self, session_id: str, max_pumps: int = 10_000) -> int:
        """Block (by pumping the broker) until the next global model is applied.

        Returns the global model version now installed.  Raises
        :class:`SDFLMQError` if the broker quiesces without the update
        arriving (which indicates a stalled round).
        """
        participation = self._participation(session_id)
        target = participation.awaited_global_version
        for _ in range(max_pumps):
            if self.models.global_version(session_id) >= target:
                return self.models.global_version(session_id)
            before = self.models.global_version(session_id)
            self._pump()
            if self.models.global_version(session_id) == before and self.pump is None:
                break
        if self.models.global_version(session_id) >= target:
            return self.models.global_version(session_id)
        raise SDFLMQError(
            f"global update for session {session_id!r} did not arrive "
            f"(have version {self.models.global_version(session_id)}, want {target})"
        )

    def report_stats(
        self,
        session_id: str,
        train_loss: float = 0.0,
        local_accuracy: float = 0.0,
    ) -> None:
        """Send the per-round readiness + system stats report to the coordinator."""
        participation = self._participation(session_id)
        stats = self.stats_provider() if self.stats_provider is not None else DeviceStats(self.client_id)
        record = self.models.record(session_id) if self.models.has_model(session_id) else None
        report = ClientStatsReport(
            session_id=session_id,
            client_id=self.client_id,
            round_index=participation.current_round,
            available_memory_bytes=stats.available_memory_bytes,
            cpu_load=stats.cpu_load,
            bandwidth_bps=stats.bandwidth_bps,
            num_samples=record.num_samples if record is not None else 0,
            train_loss=train_loss,
            local_accuracy=local_accuracy,
        )
        self.endpoint.call_topic(
            coordinator_call_topic("report_stats"), "report_stats", report.to_dict(), expect_response=False
        )

    # ------------------------------------------------------------- accessors

    def role(self, session_id: str) -> Role:
        """Current role in ``session_id``."""
        return self.arbiter.role(session_id)

    def current_round(self, session_id: str) -> int:
        """The FL round this client believes ``session_id`` is in."""
        return self._participation(session_id).current_round

    def session_completed(self, session_id: str) -> bool:
        """Whether the coordinator announced completion of ``session_id``."""
        return self._participation(session_id).completed

    def participation(self, session_id: str) -> SessionParticipation:
        """The client-side participation record (raises if not participating)."""
        return self._participation(session_id)

    def sessions(self) -> List[str]:
        """Sessions this client participates in (sorted)."""
        return sorted(self._sessions)

    # ----------------------------------------------------------- participation

    def _ensure_participation(
        self, session_id: str, model_name: str, fl_rounds: int, aggregation: str
    ) -> SessionParticipation:
        if session_id not in self._sessions:
            self._sessions[session_id] = SessionParticipation(
                session_id=session_id,
                model_name=model_name,
                fl_rounds=fl_rounds,
                aggregation=aggregation,
                owner_id=self.client_id,
                resources=self.resources,
            )
            self.arbiter.ensure_session(session_id)
            self._subscribe_session_topics(session_id)
        return self._sessions[session_id]

    def _participation(self, session_id: str) -> SessionParticipation:
        participation = self._sessions.get(session_id)
        if participation is None:
            raise SDFLMQError(
                f"client {self.client_id!r} does not participate in session {session_id!r}"
            )
        return participation

    def _subscribe_session_topics(self, session_id: str) -> None:
        self.endpoint.register(
            f"session_control__{session_id}",
            lambda notice, sid=session_id: self._handle_session_control(sid, notice),
            session_broadcast_topic(session_id),
        )
        self.endpoint.register(
            f"apply_global__{session_id}",
            lambda payload, sid=session_id: self._handle_apply_global(sid, payload),
            global_update_topic(session_id),
        )
        # The contribution inbox stays subscribed for the whole session, not
        # just while this client holds an aggregating role.  A mid-round
        # re-plan can promote a client and route peers' (re-)sends to it
        # before its own set_role message lands; with a role-scoped
        # subscription the broker would drop those messages on the floor and
        # the restarted round could never complete.  With a session-scoped
        # inbox they are buffered and reconciled when the role arrives.
        self.endpoint.register(
            f"receive_model__{session_id}",
            lambda payload, sid=session_id: self._handle_receive_model(sid, payload),
            aggregator_params_topic(session_id, self.client_id),
        )

    # ------------------------------------------------------------ role control

    def _handle_set_role(self, assignment_dict: dict) -> None:
        assignment = RoleAssignment.from_dict(assignment_dict)
        session_id = assignment.session_id
        self._ensure_participation(
            session_id, model_name="", fl_rounds=0, aggregation=self.default_aggregation
        )
        change = self.arbiter.apply_assignment(assignment)
        self._apply_topic_change(session_id, change)
        participation = self._participation(session_id)
        participation.rounds.observe_round(assignment.round_index)
        self._reconcile_pending(session_id)
        if self.on_role_assigned is not None:
            self.on_role_assigned(self.client_id, session_id, assignment)

    def _reconcile_pending(self, session_id: str) -> None:
        """Re-route buffered contributions after a mid-round role change.

        If a contributor dropped out mid-round the coordinator re-plans the
        topology for the survivors.  A client that keeps an aggregating role
        may now already hold enough contributions (its cluster shrank), so the
        trigger is re-checked; a client that *lost* its aggregating role
        forwards whatever it had buffered to its new parent so no contribution
        is stranded.
        """
        participation = self._participation(session_id)
        if not participation.buffer.pending or not self.arbiter.has_session(session_id):
            return
        role_state = self.arbiter.state(session_id)
        if role_state.role.aggregates:
            self._maybe_aggregate(session_id)
            return
        if role_state.parent_id is None:
            return  # idle / unknown destination: keep the buffer until reassigned
        for contribution in participation.buffer.drain():
            self._publish_contribution(session_id, role_state.parent_id, contribution)

    def _handle_reset_role(self, session_id: str) -> None:
        change = self.arbiter.reset_role(session_id)
        self._apply_topic_change(session_id, change)

    def _apply_topic_change(self, session_id: str, change: TopicChange) -> None:
        # The params inbox is session-scoped (see _subscribe_session_topics),
        # so a demotion keeps the subscription: contributions addressed to a
        # stale topology are buffered and forwarded by _reconcile_pending
        # instead of vanishing at the broker.  Re-registering on promotion is
        # an idempotent no-op (same handler name, same topic).
        for topic in change.subscribe:
            self.endpoint.register(
                f"receive_model__{session_id}",
                lambda payload, sid=session_id: self._handle_receive_model(sid, payload),
                topic,
            )

    # ----------------------------------------------------- session broadcasts

    def _handle_session_control(self, session_id: str, notice: dict) -> None:
        participation = self._participation(session_id)
        rounds = participation.rounds
        event = notice.get("event", "")
        if event == "cluster_topology":
            aggregation = notice.get("aggregation")
            if aggregation:
                participation.aggregation = str(aggregation)
                self._aggregators.pop(session_id, None)
            rounds.observe_round(int(notice.get("round_index", 0)))
            # A client that (re)joined after a mid-round restart never saw the
            # round_restart notice; syncing the epoch piggybacked on topology
            # and round_advanced broadcasts keeps its uploads from being
            # discarded as pre-restart leftovers.
            rounds.observe_epoch(int(notice.get("restart_epoch", 0)))
        elif event == "round_advanced":
            rounds.round_advanced(
                int(notice.get("round_index", rounds.current_round)),
                epoch=int(notice.get("restart_epoch", 0)),
            )
        elif event == "round_restart":
            self._handle_round_restart(
                session_id,
                int(notice.get("round_index", rounds.current_round)),
                epoch=int(notice.get("epoch", rounds.restart_epoch + 1)),
            )
        elif event in ("session_complete", "session_terminated"):
            rounds.completed = True

    def _handle_round_restart(self, session_id: str, round_index: int, epoch: int = 0) -> None:
        """Recover from a mid-round contributor loss (coordinator-initiated).

        A contributor (possibly an aggregator) vanished before the round's
        global model was produced, so partial aggregates may have been lost in
        transit.  Every surviving client drops what it had buffered *from
        before this restart* and — if it had already uploaded its local
        update this round — re-sends it, now routed according to the freshly
        re-planned topology.

        ``epoch`` orders restarts against contribution deliveries: re-sent
        contributions carry the epoch of the restart that triggered them, so
        an aggregator whose restart notice arrives *after* a peer's re-send
        (delivery latency differs per client) keeps that re-send instead of
        wiping it — without the epoch stamp, the wipe deadlocked the round,
        with every survivor waiting on a contribution nobody would re-send.
        """
        participation = self._participation(session_id)
        if not participation.rounds.observe_restart(round_index, epoch):
            return  # duplicate or out-of-date restart notice
        participation.buffer.drop_stale_epochs(epoch)

        already_uploaded = participation.rounds.uploads_sent > 0
        still_waiting = (
            self.models.has_model(session_id)
            and participation.rounds.awaiting_global(self.models.global_version(session_id))
        )
        if already_uploaded and still_waiting:
            self.send_local(session_id)

    # ------------------------------------------------------------ aggregation

    def _aggregator_for(self, session_id: str) -> AggregationStrategy:
        strategy = self._aggregators.get(session_id)
        if strategy is None:
            participation = self._participation(session_id)
            strategy = get_aggregator(participation.aggregation)
            self._aggregators[session_id] = strategy
        return strategy

    def _handle_receive_model(self, session_id: str, payload: dict) -> None:
        """Peer contribution arriving on this client's aggregator params topic."""
        # No role check here: a contribution can arrive before this client's
        # promotion to aggregator has been processed (the sender acted on the
        # re-planned topology first).  It is buffered either way; when the
        # set_role lands, _reconcile_pending aggregates it — and if this
        # client is *not* promoted after all, the same hook forwards the
        # buffer to its actual parent, so nothing is stranded.
        state = payload["state"]
        if is_encoded_state(state):
            codec = self.endpoint.update_codec
            if codec is None:
                raise SDFLMQError(
                    f"client {self.client_id!r} received a "
                    f"{state.get(CODEC_WIRE_KEY)!r}-encoded update but has no "
                    "update codec installed; the fleet's update_codec settings "
                    "are inconsistent"
                )
            state = codec.decode_state(session_id, state)
            tracer = self.endpoint.tracer
            if tracer is not None:
                tracer.instant(
                    "update-decode",
                    "codec",
                    args={"endpoint": self.client_id, "codec": codec.spec},
                )
        contribution = ModelContribution(
            state=state,
            weight=float(payload.get("weight", 1.0)),
            sender_id=str(payload.get("sender", "?")),
            round_index=int(payload.get("round_index", 0)),
            epoch=int(payload.get("epoch", 0)),
        )
        self._buffer_contribution(session_id, contribution, charge_memory=True)

    def _buffer_contribution(
        self, session_id: str, contribution: ModelContribution, charge_memory: bool
    ) -> None:
        participation = self._participation(session_id)
        if not participation.buffer.add(
            contribution,
            min_epoch=participation.rounds.restart_epoch,
            charge_memory=charge_memory,
        ):
            return  # pre-restart leftover: the sender re-sends or was dropped
        self._maybe_aggregate(session_id)

    def _expected_buffer_size(self, session_id: str) -> int:
        role_state = self.arbiter.state(session_id)
        expected = role_state.expected_contributions
        if role_state.role.trains:
            expected += 1  # the aggregator's own local update
        return expected

    def _maybe_aggregate(self, session_id: str) -> None:
        participation = self._participation(session_id)
        role_state = self.arbiter.state(session_id)
        if not role_state.role.aggregates:
            return
        expected = self._expected_buffer_size(session_id)
        # Only contributions belonging to the round currently in progress count
        # toward the trigger; anything stale (earlier rounds that were restarted
        # and already superseded) is garbage-collected by the buffer's take.
        contributions = participation.buffer.take(participation.current_round, expected)
        if contributions is None:
            return

        strategy = self._aggregator_for(session_id)
        aggregated = strategy.aggregate(contributions)
        total_weight = sum(c.weight for c in contributions)
        round_index = max(c.round_index for c in contributions)
        self.bytes_aggregated += sum(c.nbytes for c in contributions)
        participation.aggregations_performed += 1

        result = ModelContribution(
            state=aggregated,
            weight=total_weight,
            sender_id=self.client_id,
            round_index=round_index,
            epoch=participation.restart_epoch,
        )
        if role_state.parent_id is not None:
            self._publish_contribution(session_id, role_state.parent_id, result)
        else:
            self._publish_global(session_id, result, num_contributors=expected)

    # --------------------------------------------------------------- publish

    def _publish_contribution(
        self, session_id: str, parent_id: str, contribution: ModelContribution
    ) -> None:
        state: object = contribution.state
        codec = self.endpoint.update_codec
        if codec is not None:
            saved_before = codec.stats.bytes_saved
            state = codec.encode_state(session_id, contribution.state)
            tracer = self.endpoint.tracer
            if tracer is not None:
                tracer.instant(
                    "update-encode",
                    "codec",
                    args={
                        "endpoint": self.client_id,
                        "codec": codec.spec,
                        "saved_bytes": codec.stats.bytes_saved - saved_before,
                    },
                )
        self.endpoint.call_topic(
            aggregator_params_topic(session_id, parent_id),
            "receive_model",
            {
                "session_id": session_id,
                "sender": contribution.sender_id,
                "round_index": contribution.round_index,
                "weight": contribution.weight,
                "epoch": contribution.epoch,
                "state": state,
            },
            expect_response=False,
        )

    def _publish_global(
        self, session_id: str, contribution: ModelContribution, num_contributors: int
    ) -> None:
        participation = self._participation(session_id)
        self.endpoint.call_topic(
            global_store_topic(session_id),
            "store_global",
            {
                "session_id": session_id,
                "model_name": participation.model_name,
                "round_index": contribution.round_index,
                "total_weight": contribution.weight,
                "num_contributors": num_contributors,
                "state": contribution.state,
            },
            expect_response=False,
        )

    # ----------------------------------------------------------- global model

    def _handle_apply_global(self, session_id: str, payload: dict) -> None:
        round_index = int(payload.get("round_index", 0))
        codec = self.endpoint.update_codec
        if codec is not None:
            # Capture the broadcast global as the delta reference *before* the
            # has-a-model gate: aggregator-only clients must keep decoding
            # their children's delta-encoded contributions.
            codec.observe_global(session_id, payload["state"], round_index)
        if not self.models.has_model(session_id):
            return  # e.g. an aggregator-only client with no local model registered
        self.models.apply_global(session_id, payload["state"], round_index)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SDFLMQClient({self.client_id!r}, sessions={len(self._sessions)}, "
            f"connected={self.mqtt.connected})"
        )
