"""Command-line interface for the SDFLMQ reproduction.

Exposes the experiment harness without writing any Python::

    python -m repro fig7                         # reproduce Fig. 7 (accuracy convergence)
    python -m repro fig8                         # reproduce Fig. 8 (processing delay sweep)
    python -m repro ablation aggregator-fraction # run one of the ablation studies
    python -m repro run --clients 8 --rounds 3 --policy central
    python -m repro list                         # list available ablations
    python -m repro scenario list                # named scenarios (churn/fault workloads)
    python -m repro scenario run heavy-churn --seed 7
    python -m repro scenario sweep --seeds 1 2 3
    python -m repro scenario grid --workers 4 --report out/   # parameter grid, parallel
    python -m repro scenario grid --resume       # restart an interrupted grid from the store
    python -m repro scenario schema              # generated spec field reference
    python -m repro scenario store ls            # content-addressed results store
    python -m repro scenario store show <hash>
    python -m repro scenario store gc --older-than-days 30
    python -m repro scenario serve --port 8765   # JSON API + grid-heatmap dashboard

All commands print the same plain-text tables the benchmark harness emits.
Scenario runs and grids consult the results store (``.repro/results.sqlite``
by default, ``--store``/``REPRO_STORE`` to relocate, ``--no-store`` to
disable) before executing: a previously stored ``(spec, seed)`` is returned
from the store with a byte-identical signature instead of being re-run.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import ablations
from repro.experiments.fig7_accuracy import Fig7Config, run_fig7
from repro.experiments.fig8_delay import Fig8Config, run_fig8
from repro.experiments.report import format_series, format_table
from repro.obs import get_logger
from repro.obs.tools import summarize_trace, trace_summary_rows
from repro.runtime.experiment import ExperimentConfig, FLExperiment
from repro.scenarios import (
    ResultsStore,
    ResultsStoreError,
    ScenarioRunner,
    ScenarioSpec,
    SweepSpec,
    default_store_path,
    grid_names,
    grid_summaries,
    scenario_names,
    scenario_summaries,
    schema_markdown,
)

__all__ = ["main", "build_parser", "ABLATIONS"]

#: name → zero/low-argument callable returning table rows.
ABLATIONS: Dict[str, Callable[..., List[dict]]] = {
    "aggregator-fraction": ablations.run_aggregator_fraction_sweep,
    "payload-compression": ablations.run_payload_compression_sweep,
    "role-rearrangement": ablations.run_role_rearrangement,
    "broker-bridging": ablations.run_broker_bridging,
    "topologies": ablations.run_topology_comparison,
    "aggregation-strategies": ablations.run_aggregation_strategies,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and --help generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'SDFLMQ: A Semi-Decentralized Federated "
        "Learning Framework over MQTT' (IPDPSW/PAISE 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig7 = sub.add_parser("fig7", help="accuracy convergence: offline vs SDFL (paper Fig. 7)")
    fig7.add_argument("--fast", action="store_true", help="shrunk configuration (seconds instead of minutes)")
    fig7.add_argument("--seed", type=int, default=42)

    fig8 = sub.add_parser("fig8", help="total processing delay vs client count (paper Fig. 8)")
    fig8.add_argument("--fast", action="store_true", help="only the first two client counts, 3 rounds")
    fig8.add_argument("--seed", type=int, default=7)

    ablation = sub.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("name", choices=sorted(ABLATIONS), help="which ablation to run")

    sub.add_parser("list", help="list available ablations")

    run = sub.add_parser("run", help="run a custom SDFLMQ experiment")
    run.add_argument("--clients", type=int, default=5)
    run.add_argument("--rounds", type=int, default=3)
    run.add_argument("--epochs", type=int, default=3)
    run.add_argument("--policy", choices=["hierarchical", "central"], default="hierarchical")
    run.add_argument("--aggregator-fraction", type=float, default=0.30)
    run.add_argument("--aggregation", default="fedavg")
    run.add_argument("--role-policy", default="static")
    run.add_argument("--partition", choices=["iid", "dirichlet", "shard"], default="iid")
    run.add_argument("--dirichlet-alpha", type=float, default=0.5)
    run.add_argument("--dataset-samples", type=int, default=4000)
    run.add_argument("--client-fraction", type=float, default=0.02)
    run.add_argument("--regions", type=int, default=1)
    run.add_argument("--device-tier", default="laptop")
    run.add_argument("--heterogeneous", action="store_true")
    run.add_argument("--no-train", action="store_true", help="skip real training (delay-only runs)")
    run.add_argument("--seed", type=int, default=42)

    scenario = sub.add_parser(
        "scenario", help="declarative scenarios with churn + fault injection"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    def add_store_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--store", default=None, metavar="PATH",
            help="results-store sqlite file (default: $REPRO_STORE or .repro/results.sqlite)",
        )
        command.add_argument(
            "--no-store", action="store_true",
            help="execute without consulting or writing the results store",
        )

    scenario_sub.add_parser("list", help="list the named scenario registry")

    scenario_run = scenario_sub.add_parser(
        "run", help="run one named scenario (or a JSON spec file) deterministically"
    )
    scenario_run.add_argument(
        "name", nargs="?", default=None,
        help="registry name (omit when using --spec)",
    )
    scenario_run.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load a ScenarioSpec from a JSON file instead of the registry",
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )
    scenario_run.add_argument(
        "--trace", default=None, metavar="DIR",
        help="write the sim-time flight recorder here (Chrome trace_event JSON "
             "+ JSONL + metrics snapshot); forces execution (no store hit)",
    )
    scenario_run.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="fan region shards out over N worker processes (clamped to the "
             "spec's region count); result-neutral — signatures are "
             "byte-identical for every shard count",
    )
    add_store_options(scenario_run)

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="run a suite of named scenarios across seeds (one summary row each)"
    )
    scenario_sweep.add_argument(
        "names", nargs="*", default=[],
        help="scenario names (default: the whole registry)",
    )
    scenario_sweep.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="seeds to sweep (default: each spec's own seed)",
    )
    add_store_options(scenario_sweep)

    scenario_grid = scenario_sub.add_parser(
        "grid",
        help="expand a parameter grid (named or --spec JSON) and run every cell",
    )
    scenario_grid.add_argument(
        "name", nargs="?", default="deadline-tier-mix",
        help="grid registry name (default: deadline-tier-mix; ignored with --spec)",
    )
    scenario_grid.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load a SweepSpec from a JSON file instead of the registry",
    )
    scenario_grid.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the cell fan-out (results are byte-identical "
             "for any worker count)",
    )
    scenario_grid.add_argument(
        "--report", default=None, metavar="DIR",
        help="write grid.csv/md, messaging_vs_analytic.csv/md and signatures.txt here",
    )
    scenario_grid.add_argument(
        "--list", action="store_true", dest="list_grids",
        help="list the named grid registry and exit",
    )
    scenario_grid.add_argument(
        "--resume", action="store_true",
        help="restart an interrupted grid: stored cells are reused, only "
             "missing cells execute (requires the results store)",
    )
    scenario_grid.add_argument(
        "--trace", default=None, metavar="DIR",
        help="write per-cell flight recorder files here (forces every cell "
             "to execute)",
    )
    add_store_options(scenario_grid)

    scenario_store = scenario_sub.add_parser(
        "store", help="inspect and maintain the content-addressed results store"
    )
    store_sub = scenario_store.add_subparsers(dest="store_command", required=True)

    store_ls = store_sub.add_parser("ls", help="list stored runs and recorded grids")
    store_ls.add_argument(
        "--scenario", default=None, help="only runs of this scenario name"
    )
    add_store_options(store_ls)

    store_show = store_sub.add_parser(
        "show", help="show one stored run (hash prefix + --seed) or grid (hash/name)"
    )
    store_show.add_argument("prefix", help="spec-hash prefix, sweep-hash prefix, or grid name")
    store_show.add_argument(
        "--seed", type=int, default=None,
        help="look up a stored run at this seed (omit to look up a grid)",
    )
    add_store_options(store_show)

    store_gc = store_sub.add_parser(
        "gc", help="delete stored runs (and grids left unresolvable) by age/scenario"
    )
    store_gc.add_argument(
        "--older-than-days", type=float, default=None, metavar="DAYS",
        help="delete runs not used in the last DAYS days",
    )
    store_gc.add_argument("--scenario", default=None, help="delete runs of this scenario name")
    store_gc.add_argument("--all", action="store_true", dest="delete_all", help="empty the store")
    store_gc.add_argument(
        "--no-vacuum", action="store_true", help="skip the sqlite VACUUM after deleting"
    )
    add_store_options(store_gc)

    scenario_serve = scenario_sub.add_parser(
        "serve", help="serve stored runs/grids over HTTP (JSON API + heatmap dashboard)"
    )
    scenario_serve.add_argument("--host", default="127.0.0.1")
    scenario_serve.add_argument("--port", type=int, default=8765)
    scenario_serve.add_argument(
        "--verbose", action="store_true", help="log every request to stderr"
    )
    scenario_serve.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="also serve flight-recorder files from DIR under /api/trace",
    )
    add_store_options(scenario_serve)

    scenario_trace = scenario_sub.add_parser(
        "trace",
        help="summarize a flight-recorder file (Chrome trace_event JSON or JSONL)",
    )
    scenario_trace.add_argument("file", help="a .trace.json or .trace.jsonl file")
    scenario_trace.add_argument(
        "--require-span", action="append", default=[], metavar="NAME",
        help="exit non-zero unless a complete span named NAME is present "
             "(repeatable; the CI obs-smoke assertion)",
    )

    scenario_schema = scenario_sub.add_parser(
        "schema",
        help="print the generated ScenarioSpec/SweepSpec field reference (markdown)",
    )
    scenario_schema.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare the generated reference against FILE and fail on drift "
             "(the CI docs-check mode)",
    )
    return parser


def _cmd_fig7(args: argparse.Namespace) -> int:
    result = run_fig7(Fig7Config(fast=args.fast, seed=args.seed))
    print("Fig. 7 — accuracy convergence (offline vs SDFLMQ, 5 clients)\n")
    print(format_table(result.as_rows(), precision=2))
    print()
    print(format_series("offline_accuracy", result.offline_accuracy))
    print(format_series("sdfl_accuracy", result.sdfl_accuracy))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    result = run_fig8(Fig8Config(fast=args.fast, seed=args.seed))
    print("Fig. 8 — total processing delay of 10 FL rounds vs number of clients\n")
    print(format_table(result.as_rows(), precision=1))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    rows = ABLATIONS[args.name]()
    print(f"Ablation: {args.name}\n")
    printable = [
        {k: v for k, v in row.items() if not isinstance(v, dict)} for row in rows
    ]
    print(format_table(printable, precision=3))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Available ablations:")
    for name in sorted(ABLATIONS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        name="cli-run",
        num_clients=args.clients,
        fl_rounds=args.rounds,
        local_epochs=args.epochs,
        dataset_samples=args.dataset_samples,
        client_data_fraction=args.client_fraction,
        partition=args.partition,
        dirichlet_alpha=args.dirichlet_alpha,
        clustering_policy=args.policy,
        aggregator_fraction=args.aggregator_fraction,
        aggregation=args.aggregation,
        role_policy=args.role_policy,
        num_regions=args.regions,
        device_tier=args.device_tier,
        heterogeneous_devices=args.heterogeneous,
        train_for_real=not args.no_train,
        seed=args.seed,
    )
    result = FLExperiment(config).run()
    print(f"SDFLMQ experiment: {args.clients} clients, {args.rounds} rounds, "
          f"{args.policy} clustering, {args.aggregation} aggregation\n")
    print(format_table(result.as_rows(), precision=4))
    print()
    print(f"final accuracy      : {result.final_accuracy:.4f}")
    print(f"total delay (sim)   : {result.total_delay_s:.2f} s")
    print(f"total traffic       : {result.total_traffic_bytes / 1024:.1f} KiB")
    print(f"messages routed     : {result.total_messages}")
    print(f"role changes        : {result.role_changes_total}")
    return 0


def _store_path(args: argparse.Namespace) -> Optional[str]:
    """The results-store path the command should use (None = store disabled)."""
    if getattr(args, "no_store", False):
        return None
    return args.store if args.store is not None else default_store_path()


def _make_runner(args: argparse.Namespace) -> ScenarioRunner:
    """A runner wired to the selected results store (owned by the runner)."""
    return ScenarioRunner(store=_store_path(args))


def _log_store_status(runner: ScenarioRunner, result) -> None:
    """One structured stderr line on cache behaviour.

    Context fields (scenario/grid, seed, workers) are *prefixed* by the
    ``repro.obs.log`` adapter, so the ``store: …`` message text stays a
    fixed substring (the CI store-smoke greps it) and stdout stays
    byte-stable for cached-run comparisons.
    """
    if runner.store is None:
        return
    if hasattr(result, "cached_cells"):
        log = get_logger(
            "repro.scenario.grid", grid=result.sweep.name, workers=result.workers
        )
        log.info(
            f"store: {result.cached_cells} cached, {result.executed_cells} executed "
            f"({runner.store.path})"
        )
    else:
        log = get_logger(
            "repro.scenario.run", scenario=result.spec.name, seed=result.seed
        )
        status = "hit" if result.from_store else "miss (stored)"
        log.info(f"store: {status} ({runner.store.path})")


def _cmd_scenario_grid(args: argparse.Namespace) -> int:
    if args.list_grids:
        print("Named grids (python -m repro scenario grid <name>):\n")
        print(format_table(grid_summaries(), precision=2))
        return 0
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            grid = SweepSpec.from_dict(json.load(handle))
    else:
        if args.name not in grid_names():
            print(
                f"unknown grid {args.name!r}; available: {', '.join(grid_names())}",
                file=sys.stderr,
            )
            return 2
        grid = args.name

    if args.resume and _store_path(args) is None:
        print("--resume needs the results store (drop --no-store)", file=sys.stderr)
        return 2

    runner = _make_runner(args)
    try:
        result = runner.run_grid(grid, workers=args.workers, trace_dir=args.trace)
        _log_store_status(runner, result)
        if args.trace is not None:
            get_logger("repro.scenario.grid", grid=result.sweep.name).info(
                f"trace: wrote {len(result.cells)} cell flight recorder(s) to {args.trace}"
            )
    finally:
        runner.close()
    sweep = result.sweep
    print(
        f"Grid: {sweep.name} — {len(result.cells)} cell(s) over "
        f"{' x '.join(sweep.axis_paths)}, {result.workers} worker(s), "
        f"{result.elapsed_s:.2f} s wall"
        + (f" ({sweep.duplicates_collapsed} duplicate cell(s) collapsed)"
           if sweep.duplicates_collapsed else "")
        + "\n"
    )
    print(ScenarioRunner.format_grid(result))
    print()
    print("messaging_s (observed makespan) vs total_s (analytic critical path):\n")
    print(ScenarioRunner.format_comparison(result))
    if result.seed_aggregate_rows():
        print()
        print("per-cell mean/stddev across the seed axis:\n")
        print(ScenarioRunner.format_seed_aggregate(result))
    if args.report is not None:
        paths = result.write_report(args.report)
        print()
        for name in sorted(paths):
            print(f"wrote {paths[name]}")
    return 0


def _cmd_scenario_schema(args: argparse.Namespace) -> int:
    generated = schema_markdown()
    if args.check is None:
        print(generated, end="")
        return 0
    with open(args.check, "r", encoding="utf-8") as handle:
        committed = handle.read()
    if committed != generated:
        print(
            f"{args.check} is out of date; regenerate it with\n"
            f"  PYTHONPATH=src python -m repro scenario schema > {args.check}",
            file=sys.stderr,
        )
        return 1
    print(f"{args.check} is in sync with the dataclasses")
    return 0


def _open_store(args: argparse.Namespace) -> Optional[ResultsStore]:
    """Open the selected store for the maintenance verbs (None = disabled)."""
    path = _store_path(args)
    if path is None:
        print("this command needs the results store (drop --no-store)", file=sys.stderr)
        return None
    return ResultsStore(path)


def _cmd_scenario_store(args: argparse.Namespace) -> int:
    store = _open_store(args)
    if store is None:
        return 2
    try:
        if args.store_command == "ls":
            stats = store.stats()
            runs = store.runs(scenario=args.scenario)
            print(
                f"Results store {stats['path']} — {stats['runs']} run(s), "
                f"{stats['grids']} grid(s), {stats['total_hits']} hit(s), "
                f"{stats['size_bytes'] / 1024:.1f} KiB\n"
            )
            print(format_table([run.row() for run in runs], precision=4)
                  if runs else "(no stored runs)")
            grids = store.grids()
            print()
            print(format_table([grid.row() for grid in grids], precision=4)
                  if grids else "(no recorded grids)")
            return 0
        if args.store_command == "show":
            if args.seed is not None:
                run = store.resolve_run(args.prefix, seed=args.seed)
                document = {
                    "spec_hash": run.spec_hash,
                    "seed": run.seed,
                    "scenario": run.scenario,
                    "signature": run.signature,
                    "spec": store.run_spec(run.spec_hash, run.seed),
                    "payload": run.payload,
                }
            else:
                grid = store.resolve_grid(args.prefix)
                document = {
                    "sweep_hash": grid.sweep_hash,
                    "name": grid.name,
                    "axes": grid.axes,
                    "cells": grid.cells,
                }
            print(json.dumps(document, indent=2, sort_keys=True))
            return 0
        # gc
        removed = store.gc(
            older_than_s=(
                args.older_than_days * 86400.0
                if args.older_than_days is not None else None
            ),
            scenario=args.scenario,
            delete_all=args.delete_all,
            vacuum=not args.no_vacuum,
        )
        print(f"gc: removed {removed['runs']} run(s), {removed['grids']} grid(s)")
        return 0
    except ResultsStoreError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    finally:
        store.close()


def _cmd_scenario_serve(args: argparse.Namespace) -> int:
    from repro.scenarios.serve import serve_forever

    store = _open_store(args)
    if store is None:
        return 2
    try:
        stats = store.stats()
        get_logger("repro.scenario.serve", host=args.host, port=args.port).info(
            f"serving {stats['runs']} run(s) / {stats['grids']} grid(s) from "
            f"{stats['path']} on http://{args.host}:{args.port}/ (Ctrl-C to stop)"
        )
        serve_forever(
            store,
            host=args.host,
            port=args.port,
            verbose=args.verbose,
            trace_dir=args.trace_dir,
        )
        return 0
    finally:
        store.close()


def _cmd_scenario_trace(args: argparse.Namespace) -> int:
    try:
        summary = summarize_trace(args.file)
    except (OSError, ValueError) as exc:
        print(f"cannot read trace {args.file!r}: {exc}", file=sys.stderr)
        return 2
    print(
        f"Trace: {args.file} — {summary['events']} event(s), "
        f"{summary['spans']} span(s), {summary['instants']} instant(s), "
        f"{summary['anomalies']} anomaly marker(s)\n"
    )
    rows = trace_summary_rows(summary)
    print(format_table(rows, precision=4) if rows else "(no events)")
    missing = [
        name for name in args.require_span if name not in summary["span_names"]
    ]
    if missing:
        print(f"missing required span(s): {', '.join(missing)}", file=sys.stderr)
        return 1
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        print("Named scenarios (python -m repro scenario run <name>):\n")
        print(format_table(scenario_summaries(), precision=2))
        return 0
    if args.scenario_command == "grid":
        return _cmd_scenario_grid(args)
    if args.scenario_command == "schema":
        return _cmd_scenario_schema(args)
    if args.scenario_command == "store":
        return _cmd_scenario_store(args)
    if args.scenario_command == "serve":
        return _cmd_scenario_serve(args)
    if args.scenario_command == "trace":
        return _cmd_scenario_trace(args)

    runner = _make_runner(args)
    try:
        if args.scenario_command == "run":
            if args.spec is not None:
                with open(args.spec, "r", encoding="utf-8") as handle:
                    spec = ScenarioSpec.from_dict(json.load(handle))
            elif args.name is not None:
                if args.name not in scenario_names():
                    print(
                        f"unknown scenario {args.name!r}; "
                        f"available: {', '.join(scenario_names())}",
                        file=sys.stderr,
                    )
                    return 2
                spec = args.name
            else:
                print("scenario run needs a name or --spec FILE", file=sys.stderr)
                return 2
            result = runner.run(
                spec, seed=args.seed, trace_dir=args.trace, shards=args.shards
            )
            _log_store_status(runner, result)
            if args.trace is not None:
                get_logger(
                    "repro.scenario.run",
                    scenario=result.spec.name,
                    seed=result.seed,
                ).info(f"trace: wrote flight recorder to {args.trace}")
            print(f"Scenario: {result.spec.name} (seed {result.seed}) — "
                  f"{result.spec.description}\n")
            print(ScenarioRunner.format_rounds(result))
            print()
            print(ScenarioRunner.format_summary([result]))
            # Full determinism fingerprints, printed identically whether the
            # run was fresh, store-served or sharded — the CI shard-smoke
            # job diffs these lines across --shards counts byte for byte.
            print()
            print(f"signature: {result.signature}")
            if result.canonical_digest:
                print(f"canonical digest: {result.canonical_digest}")
                print(f"sharded signature: {result.sharded_signature}")
            return 0

        # sweep
        names = args.names or scenario_names()
        unknown = [n for n in names if n not in scenario_names()]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}; "
                  f"available: {', '.join(scenario_names())}", file=sys.stderr)
            return 2
        results = runner.run_suite(names, seeds=args.seeds)
        print(f"Scenario sweep: {len(results)} run(s)\n")
        print(ScenarioRunner.format_summary(results))
        return 0
    finally:
        runner.close()


_COMMANDS = {
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "ablation": _cmd_ablation,
    "list": _cmd_list,
    "run": _cmd_run,
    "scenario": _cmd_scenario,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
