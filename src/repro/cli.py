"""Command-line interface for the SDFLMQ reproduction.

Exposes the experiment harness without writing any Python::

    python -m repro fig7                         # reproduce Fig. 7 (accuracy convergence)
    python -m repro fig8                         # reproduce Fig. 8 (processing delay sweep)
    python -m repro ablation aggregator-fraction # run one of the ablation studies
    python -m repro run --clients 8 --rounds 3 --policy central
    python -m repro list                         # list available ablations
    python -m repro scenario list                # named scenarios (churn/fault workloads)
    python -m repro scenario run heavy-churn --seed 7
    python -m repro scenario sweep --seeds 1 2 3
    python -m repro scenario grid --workers 4 --report out/   # parameter grid, parallel
    python -m repro scenario schema              # generated spec field reference

All commands print the same plain-text tables the benchmark harness emits.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import ablations
from repro.experiments.fig7_accuracy import Fig7Config, run_fig7
from repro.experiments.fig8_delay import Fig8Config, run_fig8
from repro.experiments.report import format_series, format_table
from repro.runtime.experiment import ExperimentConfig, FLExperiment
from repro.scenarios import (
    ScenarioRunner,
    ScenarioSpec,
    SweepSpec,
    grid_names,
    grid_summaries,
    scenario_names,
    scenario_summaries,
    schema_markdown,
)

__all__ = ["main", "build_parser", "ABLATIONS"]

#: name → zero/low-argument callable returning table rows.
ABLATIONS: Dict[str, Callable[..., List[dict]]] = {
    "aggregator-fraction": ablations.run_aggregator_fraction_sweep,
    "payload-compression": ablations.run_payload_compression_sweep,
    "role-rearrangement": ablations.run_role_rearrangement,
    "broker-bridging": ablations.run_broker_bridging,
    "topologies": ablations.run_topology_comparison,
    "aggregation-strategies": ablations.run_aggregation_strategies,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for testing and --help generation)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'SDFLMQ: A Semi-Decentralized Federated "
        "Learning Framework over MQTT' (IPDPSW/PAISE 2025).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    fig7 = sub.add_parser("fig7", help="accuracy convergence: offline vs SDFL (paper Fig. 7)")
    fig7.add_argument("--fast", action="store_true", help="shrunk configuration (seconds instead of minutes)")
    fig7.add_argument("--seed", type=int, default=42)

    fig8 = sub.add_parser("fig8", help="total processing delay vs client count (paper Fig. 8)")
    fig8.add_argument("--fast", action="store_true", help="only the first two client counts, 3 rounds")
    fig8.add_argument("--seed", type=int, default=7)

    ablation = sub.add_parser("ablation", help="run one ablation study")
    ablation.add_argument("name", choices=sorted(ABLATIONS), help="which ablation to run")

    sub.add_parser("list", help="list available ablations")

    run = sub.add_parser("run", help="run a custom SDFLMQ experiment")
    run.add_argument("--clients", type=int, default=5)
    run.add_argument("--rounds", type=int, default=3)
    run.add_argument("--epochs", type=int, default=3)
    run.add_argument("--policy", choices=["hierarchical", "central"], default="hierarchical")
    run.add_argument("--aggregator-fraction", type=float, default=0.30)
    run.add_argument("--aggregation", default="fedavg")
    run.add_argument("--role-policy", default="static")
    run.add_argument("--partition", choices=["iid", "dirichlet", "shard"], default="iid")
    run.add_argument("--dirichlet-alpha", type=float, default=0.5)
    run.add_argument("--dataset-samples", type=int, default=4000)
    run.add_argument("--client-fraction", type=float, default=0.02)
    run.add_argument("--regions", type=int, default=1)
    run.add_argument("--device-tier", default="laptop")
    run.add_argument("--heterogeneous", action="store_true")
    run.add_argument("--no-train", action="store_true", help="skip real training (delay-only runs)")
    run.add_argument("--seed", type=int, default=42)

    scenario = sub.add_parser(
        "scenario", help="declarative scenarios with churn + fault injection"
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_sub.add_parser("list", help="list the named scenario registry")

    scenario_run = scenario_sub.add_parser(
        "run", help="run one named scenario (or a JSON spec file) deterministically"
    )
    scenario_run.add_argument(
        "name", nargs="?", default=None,
        help="registry name (omit when using --spec)",
    )
    scenario_run.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load a ScenarioSpec from a JSON file instead of the registry",
    )
    scenario_run.add_argument(
        "--seed", type=int, default=None, help="override the spec's seed"
    )

    scenario_sweep = scenario_sub.add_parser(
        "sweep", help="run a suite of named scenarios across seeds (one summary row each)"
    )
    scenario_sweep.add_argument(
        "names", nargs="*", default=[],
        help="scenario names (default: the whole registry)",
    )
    scenario_sweep.add_argument(
        "--seeds", type=int, nargs="+", default=None,
        help="seeds to sweep (default: each spec's own seed)",
    )

    scenario_grid = scenario_sub.add_parser(
        "grid",
        help="expand a parameter grid (named or --spec JSON) and run every cell",
    )
    scenario_grid.add_argument(
        "name", nargs="?", default="deadline-tier-mix",
        help="grid registry name (default: deadline-tier-mix; ignored with --spec)",
    )
    scenario_grid.add_argument(
        "--spec", default=None, metavar="FILE",
        help="load a SweepSpec from a JSON file instead of the registry",
    )
    scenario_grid.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the cell fan-out (results are byte-identical "
             "for any worker count)",
    )
    scenario_grid.add_argument(
        "--report", default=None, metavar="DIR",
        help="write grid.csv/md, messaging_vs_analytic.csv/md and signatures.txt here",
    )
    scenario_grid.add_argument(
        "--list", action="store_true", dest="list_grids",
        help="list the named grid registry and exit",
    )

    scenario_schema = scenario_sub.add_parser(
        "schema",
        help="print the generated ScenarioSpec/SweepSpec field reference (markdown)",
    )
    scenario_schema.add_argument(
        "--check", default=None, metavar="FILE",
        help="compare the generated reference against FILE and fail on drift "
             "(the CI docs-check mode)",
    )
    return parser


def _cmd_fig7(args: argparse.Namespace) -> int:
    result = run_fig7(Fig7Config(fast=args.fast, seed=args.seed))
    print("Fig. 7 — accuracy convergence (offline vs SDFLMQ, 5 clients)\n")
    print(format_table(result.as_rows(), precision=2))
    print()
    print(format_series("offline_accuracy", result.offline_accuracy))
    print(format_series("sdfl_accuracy", result.sdfl_accuracy))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    result = run_fig8(Fig8Config(fast=args.fast, seed=args.seed))
    print("Fig. 8 — total processing delay of 10 FL rounds vs number of clients\n")
    print(format_table(result.as_rows(), precision=1))
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    rows = ABLATIONS[args.name]()
    print(f"Ablation: {args.name}\n")
    printable = [
        {k: v for k, v in row.items() if not isinstance(v, dict)} for row in rows
    ]
    print(format_table(printable, precision=3))
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    print("Available ablations:")
    for name in sorted(ABLATIONS):
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    config = ExperimentConfig(
        name="cli-run",
        num_clients=args.clients,
        fl_rounds=args.rounds,
        local_epochs=args.epochs,
        dataset_samples=args.dataset_samples,
        client_data_fraction=args.client_fraction,
        partition=args.partition,
        dirichlet_alpha=args.dirichlet_alpha,
        clustering_policy=args.policy,
        aggregator_fraction=args.aggregator_fraction,
        aggregation=args.aggregation,
        role_policy=args.role_policy,
        num_regions=args.regions,
        device_tier=args.device_tier,
        heterogeneous_devices=args.heterogeneous,
        train_for_real=not args.no_train,
        seed=args.seed,
    )
    result = FLExperiment(config).run()
    print(f"SDFLMQ experiment: {args.clients} clients, {args.rounds} rounds, "
          f"{args.policy} clustering, {args.aggregation} aggregation\n")
    print(format_table(result.as_rows(), precision=4))
    print()
    print(f"final accuracy      : {result.final_accuracy:.4f}")
    print(f"total delay (sim)   : {result.total_delay_s:.2f} s")
    print(f"total traffic       : {result.total_traffic_bytes / 1024:.1f} KiB")
    print(f"messages routed     : {result.total_messages}")
    print(f"role changes        : {result.role_changes_total}")
    return 0


def _cmd_scenario_grid(args: argparse.Namespace) -> int:
    if args.list_grids:
        print("Named grids (python -m repro scenario grid <name>):\n")
        print(format_table(grid_summaries(), precision=2))
        return 0
    if args.spec is not None:
        with open(args.spec, "r", encoding="utf-8") as handle:
            grid = SweepSpec.from_dict(json.load(handle))
    else:
        if args.name not in grid_names():
            print(
                f"unknown grid {args.name!r}; available: {', '.join(grid_names())}",
                file=sys.stderr,
            )
            return 2
        grid = args.name

    runner = ScenarioRunner()
    result = runner.run_grid(grid, workers=args.workers)
    sweep = result.sweep
    print(
        f"Grid: {sweep.name} — {len(result.cells)} cell(s) over "
        f"{' x '.join(sweep.axis_paths)}, {result.workers} worker(s), "
        f"{result.elapsed_s:.2f} s wall"
        + (f" ({sweep.duplicates_collapsed} duplicate cell(s) collapsed)"
           if sweep.duplicates_collapsed else "")
        + "\n"
    )
    print(ScenarioRunner.format_grid(result))
    print()
    print("messaging_s (observed makespan) vs total_s (analytic critical path):\n")
    print(ScenarioRunner.format_comparison(result))
    if result.seed_aggregate_rows():
        print()
        print("per-cell mean/stddev across the seed axis:\n")
        print(ScenarioRunner.format_seed_aggregate(result))
    if args.report is not None:
        paths = result.write_report(args.report)
        print()
        for name in sorted(paths):
            print(f"wrote {paths[name]}")
    return 0


def _cmd_scenario_schema(args: argparse.Namespace) -> int:
    generated = schema_markdown()
    if args.check is None:
        print(generated, end="")
        return 0
    with open(args.check, "r", encoding="utf-8") as handle:
        committed = handle.read()
    if committed != generated:
        print(
            f"{args.check} is out of date; regenerate it with\n"
            f"  PYTHONPATH=src python -m repro scenario schema > {args.check}",
            file=sys.stderr,
        )
        return 1
    print(f"{args.check} is in sync with the dataclasses")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    if args.scenario_command == "list":
        print("Named scenarios (python -m repro scenario run <name>):\n")
        print(format_table(scenario_summaries(), precision=2))
        return 0
    if args.scenario_command == "grid":
        return _cmd_scenario_grid(args)
    if args.scenario_command == "schema":
        return _cmd_scenario_schema(args)

    runner = ScenarioRunner()
    if args.scenario_command == "run":
        if args.spec is not None:
            with open(args.spec, "r", encoding="utf-8") as handle:
                spec = ScenarioSpec.from_dict(json.load(handle))
        elif args.name is not None:
            if args.name not in scenario_names():
                print(
                    f"unknown scenario {args.name!r}; "
                    f"available: {', '.join(scenario_names())}",
                    file=sys.stderr,
                )
                return 2
            spec = args.name
        else:
            print("scenario run needs a name or --spec FILE", file=sys.stderr)
            return 2
        result = runner.run(spec, seed=args.seed)
        print(f"Scenario: {result.spec.name} (seed {result.seed}) — "
              f"{result.spec.description}\n")
        print(ScenarioRunner.format_rounds(result))
        print()
        print(ScenarioRunner.format_summary([result]))
        return 0

    # sweep
    names = args.names or scenario_names()
    unknown = [n for n in names if n not in scenario_names()]
    if unknown:
        print(f"unknown scenario(s): {', '.join(unknown)}; "
              f"available: {', '.join(scenario_names())}", file=sys.stderr)
        return 2
    results = runner.run_suite(names, seeds=args.seeds)
    print(f"Scenario sweep: {len(results)} run(s)\n")
    print(ScenarioRunner.format_summary(results))
    return 0


_COMMANDS = {
    "fig7": _cmd_fig7,
    "fig8": _cmd_fig8,
    "ablation": _cmd_ablation,
    "list": _cmd_list,
    "run": _cmd_run,
    "scenario": _cmd_scenario,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
