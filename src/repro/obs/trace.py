"""Deterministic flight recorder: sim-time spans and instants.

The :class:`Tracer` records events keyed to **simulation time** into a
bounded ring buffer.  Every timestamp comes from the sim clock or from
event state that is itself derived from the sim clock (delivery records,
lifecycle events, fault windows) — never from wall time or RNG — so two
runs of the same spec and seed produce byte-identical traces, and a run
with tracing attached produces a byte-identical signature to one without.

Two export formats:

* **JSONL** — one compact, key-sorted JSON object per line; the format the
  determinism tests pin byte-for-byte.
* **Chrome ``trace_event``** — a ``{"traceEvents": [...]}`` document that
  opens directly in Perfetto or ``chrome://tracing``.  Sim seconds are
  scaled to integer microseconds and events are mapped to one track (tid)
  per category.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = ["Tracer", "LifecycleTracer", "CATEGORY_TRACKS"]

#: Chrome-trace track (tid) per event category; unknown categories get 99.
CATEGORY_TRACKS: Dict[str, int] = {
    "round": 1,
    "lifecycle": 2,
    "fault": 3,
    "delivery": 4,
    "codec": 5,
    "anomaly": 6,
}

_DEFAULT_CAPACITY = 65536


class Tracer:
    """Bounded ring-buffer recorder for sim-time spans and instants.

    Parameters
    ----------
    clock:
        Optional zero-argument callable returning the current simulated
        time in seconds; used when an event is recorded without an
        explicit timestamp.
    capacity:
        Maximum retained events.  When full, the oldest event is evicted
        (flight-recorder semantics) and ``dropped_events`` is incremented.
    """

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        capacity: int = _DEFAULT_CAPACITY,
    ) -> None:
        self.clock = clock
        self.capacity = int(capacity)
        self.events: Deque[Dict[str, Any]] = deque(maxlen=self.capacity)
        self.dropped_events = 0
        self.anomalies: List[Dict[str, Any]] = []
        #: Optional callback fired on :meth:`note_anomaly` — the scenario
        #: runner points this at an immediate dump-to-disk so the recorder
        #: contents survive a crash or stuck round.
        self.dump_hook: Optional[Callable[[str], None]] = None

    # ------------------------------------------------------------- recording

    def now(self) -> float:
        return float(self.clock()) if self.clock is not None else 0.0

    def _append(self, event: Dict[str, Any]) -> None:
        if len(self.events) == self.capacity:
            self.dropped_events += 1
        self.events.append(event)

    def instant(
        self,
        name: str,
        cat: str,
        ts: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration event at ``ts`` (default: sim now)."""
        event: Dict[str, Any] = {
            "ph": "i",
            "name": name,
            "cat": cat,
            "ts": float(ts if ts is not None else self.now()),
        }
        if args:
            event["args"] = args
        self._append(event)

    def complete(
        self,
        name: str,
        cat: str,
        ts_start: float,
        ts_end: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a span covering ``[ts_start, ts_end]`` in sim seconds."""
        event: Dict[str, Any] = {
            "ph": "X",
            "name": name,
            "cat": cat,
            "ts": float(ts_start),
            "dur": max(0.0, float(ts_end) - float(ts_start)),
        }
        if args:
            event["args"] = args
        self._append(event)

    def note_anomaly(
        self,
        kind: str,
        ts: Optional[float] = None,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record an anomaly instant and fire the dump hook (if set).

        Anomalies are the flight recorder's dump triggers: deadline
        restarts, injected crashes, stuck rounds.
        """
        at = float(ts if ts is not None else self.now())
        record: Dict[str, Any] = {"kind": kind, "ts": at}
        if args:
            record["args"] = args
        self.anomalies.append(record)
        self.instant(kind, "anomaly", ts=at, args=args)
        if self.dump_hook is not None:
            self.dump_hook(kind)

    # --------------------------------------------------------------- exports

    def to_jsonl(self) -> str:
        """Compact key-sorted JSONL — the byte-pinned determinism format."""
        lines = [
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self.events
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Chrome ``trace_event`` document (Perfetto / chrome://tracing)."""
        trace_events: List[Dict[str, Any]] = []
        for event in self.events:
            out: Dict[str, Any] = {
                "ph": event["ph"],
                "name": event["name"],
                "cat": event["cat"],
                "pid": 1,
                "tid": CATEGORY_TRACKS.get(event["cat"], 99),
                "ts": int(round(event["ts"] * 1_000_000)),
            }
            if event["ph"] == "X":
                out["dur"] = int(round(event["dur"] * 1_000_000))
            if event["ph"] == "i":
                out["s"] = "g"
            if "args" in event:
                out["args"] = event["args"]
            trace_events.append(out)
        metadata = [
            {
                "ph": "M",
                "name": "thread_name",
                "pid": 1,
                "tid": tid,
                "args": {"name": cat},
            }
            for cat, tid in sorted(CATEGORY_TRACKS.items(), key=lambda kv: kv[1])
        ]
        return {
            "displayTimeUnit": "ms",
            "traceEvents": metadata + trace_events,
            "otherData": {
                "clock": "simulation",
                "dropped_events": self.dropped_events,
                "anomalies": self.anomalies,
            },
        }

    def chrome_json(self) -> str:
        return json.dumps(self.to_chrome_trace(), sort_keys=True, separators=(",", ":"))


class LifecycleTracer:
    """Adapter turning :class:`~repro.core.rounds.LifecycleEvent`s into spans.

    Mirrors ``PhaseTimer``'s interval bookkeeping: prime with the current
    phase, then each ``phase`` event closes the open interval into a
    complete span named after the phase that just ended.  Deadline expiry
    and restarts additionally register as anomalies (dump triggers).
    """

    def __init__(self, tracer: Tracer) -> None:
        self.tracer = tracer
        self._phase_name: Optional[str] = None
        self._round_index = 0
        self._since = 0.0

    def prime(self, phase: Any, round_index: int, at: float) -> None:
        self._phase_name = getattr(phase, "value", str(phase))
        self._round_index = int(round_index)
        self._since = float(at)

    def on_event(self, event: Any) -> None:
        kind = event.kind
        phase_name = getattr(event.phase, "value", str(event.phase))
        # ``restart``/``advance``/``complete`` change the phase without a
        # dedicated ``phase`` event, and ``admit``/``drop`` fire mid-phase;
        # closing on *change* keeps one span per contiguous phase dwell.
        if phase_name != self._phase_name:
            if self._phase_name is not None:
                self.tracer.complete(
                    self._phase_name,
                    "round",
                    self._since,
                    event.at,
                    args={"round": self._round_index, "epoch": event.epoch},
                )
            self.prime(event.phase, event.round_index, event.at)
        if kind == "phase":
            return
        args: Dict[str, Any] = {"round": event.round_index, "epoch": event.epoch}
        if event.client_id:
            args["client_id"] = event.client_id
        if kind in ("deadline", "restart"):
            self.tracer.note_anomaly(f"round-{kind}", ts=event.at, args=args)
        else:
            self.tracer.instant(kind, "lifecycle", ts=event.at, args=args)
