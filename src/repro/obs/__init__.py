"""Unified observability layer: metrics registry, sim-time tracer, logging.

The package is deliberately a leaf: nothing here imports runtime, scenario,
or broker modules.  Components expose plain attributes (``tracer``,
counters) and the :mod:`repro.obs.attach` helpers wire them up by duck
typing, so the hot paths pay a single ``is None`` check when observability
is disabled and literally nothing when a component was never attached.
"""

from .log import configure_logging, get_logger
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, metric_key
from .trace import LifecycleTracer, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LifecycleTracer",
    "MetricsRegistry",
    "Tracer",
    "configure_logging",
    "get_logger",
    "metric_key",
]
