"""Unified metrics registry for the simulation platform.

Three instrument kinds — :class:`Counter`, :class:`Gauge`,
:class:`Histogram` — each addressed by a name plus an optional label set.
Components that need *live* instrumentation hold a direct reference to an
instrument (one attribute load + one method call per event); components
that already keep their own plain counters are absorbed through
*collectors*: callbacks run at snapshot time that copy the component's
counters into registry gauges.  Collectors cost nothing on the hot path,
which is how the registry stays near-zero-cost when unregistered.

Snapshots are plain dicts with deterministically sorted keys, so two runs
of the same scenario and seed serialize to byte-identical JSON.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "metric_key",
]

#: Latency-ish default bucket upper bounds, in simulated seconds.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    60.0,
)


def metric_key(name: str, labels: Mapping[str, object]) -> str:
    """Render ``name{a=1,b=x}`` with labels sorted by key (stable across runs)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter; resettable only through its registry's lifecycle."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value (last write wins)."""

    __slots__ = ("key", "value")

    def __init__(self, key: str) -> None:
        self.key = key
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with count/total/min/max summary stats."""

    __slots__ = ("key", "buckets", "bucket_counts", "count", "total", "min", "max")

    def __init__(self, key: str, buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.key = key
        self.buckets = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left returns the first bucket whose bound >= value (the
        # overflow slot when none is) at C speed — this runs once per
        # scheduler delivery, and the obs_overhead_ratio bench gate bounds it.
        self.bucket_counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {
                f"le_{bound:g}": self.bucket_counts[i]
                for i, bound in enumerate(self.buckets)
            },
        }
        doc["buckets"]["le_inf"] = self.bucket_counts[-1]  # type: ignore[index]
        return doc


class MetricsRegistry:
    """Get-or-create instrument store with snapshot-time collectors.

    ``counter`` / ``gauge`` / ``histogram`` return the same object for the
    same (name, labels) pair, so hot paths can cache the instrument once at
    attach time and skip the dict lookup per event.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []

    # ----------------------------------------------------------- instruments

    def counter(self, name: str, **labels: object) -> Counter:
        key = metric_key(name, labels)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = Counter(key)
        return instrument

    def gauge(self, name: str, **labels: object) -> Gauge:
        key = metric_key(name, labels)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = Gauge(key)
        return instrument

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        key = metric_key(name, labels)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = Histogram(key, buckets)
        return instrument

    # ------------------------------------------------------------ collectors

    def register_collector(self, collector: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at snapshot time.

        Collectors absorb components that keep their own plain counters
        (broker stats, topic-trie caches, scheduler counters, QoS dedup
        rings, contribution buffers) without touching their hot paths.
        """
        self._collectors.append(collector)

    def collect(self) -> None:
        for collector in self._collectors:
            collector(self)

    # ------------------------------------------------------------- lifecycle

    def reset(self) -> None:
        """Zero every instrument (explicit reset-per-run lifecycle)."""
        for counter in self._counters.values():
            counter.value = 0
        for gauge in self._gauges.values():
            gauge.value = 0.0
        for histogram in self._histograms.values():
            histogram.bucket_counts = [0] * (len(histogram.buckets) + 1)
            histogram.count = 0
            histogram.total = 0.0
            histogram.min = None
            histogram.max = None

    # --------------------------------------------------------------- exports

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Run collectors, then return a deterministic nested dict."""
        self.collect()
        return {
            "counters": {
                key: self._counters[key].value for key in sorted(self._counters)
            },
            "gauges": {key: self._gauges[key].value for key in sorted(self._gauges)},
            "histograms": {
                key: self._histograms[key].summary()
                for key in sorted(self._histograms)
            },
        }
