"""Wire the metrics registry and tracer into a running experiment.

Everything here is duck-typed on purpose: ``repro.obs`` stays a leaf
package (no imports from the runtime/broker/scenario layers), and the
collectors read the same plain counters the components already keep —
broker stats and route caches, topic-trie match caches, scheduler
counters, client QoS-dedup rings, MQTTFC endpoint chunk counters and
contribution-buffer memory charging — so attaching a registry adds zero
cost to any hot path.  The only live instrumentation is the scheduler's
per-delivery latency histogram and the tracer hooks, both guarded by a
single ``is None`` check when detached.
"""

from __future__ import annotations

from typing import Any, Optional

from .metrics import MetricsRegistry
from .trace import LifecycleTracer, Tracer

__all__ = [
    "attach_experiment_metrics",
    "attach_experiment_tracer",
]

#: Sub-second buckets for broker→client delivery latency (sim seconds).
DELIVERY_LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0)

_SCHEDULER_COUNTERS = (
    "events_processed",
    "messages_processed",
    "actions_fired",
    "sweeps",
    "deliveries_dropped",
    "deliveries_requeued",
    "deliveries_cancelled",
)

_BROKER_STATS_FIELDS = (
    "connects",
    "disconnects",
    "messages_published",
    "messages_delivered",
    "messages_dropped",
    "messages_queued_offline",
    "bytes_published",
    "bytes_delivered",
    "retained_messages",
    "bridged_in",
    "bridged_out",
)

_ENDPOINT_STATS_FIELDS = (
    "calls_sent",
    "calls_served",
    "responses_sent",
    "responses_received",
    "request_bytes_sent",
    "response_bytes_sent",
    "chunks_sent",
    "chunks_received",
    "errors_returned",
)

_CODEC_STATS_FIELDS = (
    "updates_encoded",
    "updates_decoded",
    "tensors_encoded",
    "bytes_in",
    "bytes_out",
    "bytes_saved",
    "escape_values",
)


def _endpoints(experiment: Any):
    for client in experiment.clients:
        yield client.endpoint
    yield experiment.coordinator.endpoint
    yield experiment.parameter_server.endpoint


def attach_experiment_metrics(
    experiment: Any,
    registry: MetricsRegistry,
    injector: Optional[Any] = None,
) -> MetricsRegistry:
    """Register snapshot-time collectors over every instrumented component.

    Also attaches the scheduler's live delivery-latency histogram (the one
    hot-path instrument; its cost is what ``tools/bench.py``'s
    ``obs_overhead_ratio`` gate bounds).
    """
    scheduler = experiment.scheduler
    scheduler.attach_metrics(registry)

    def collect(reg: MetricsRegistry) -> None:
        for field in _SCHEDULER_COUNTERS:
            reg.gauge(f"scheduler_{field}").set(getattr(scheduler, field))
        reg.gauge("scheduler_last_event_time_s").set(scheduler.last_event_time)
        reg.gauge("scheduler_pending_deliveries").set(
            scheduler.pending_delivery_count
        )

        for broker in experiment.brokers:
            stats = broker.stats
            for field in _BROKER_STATS_FIELDS:
                reg.gauge(f"broker_{field}", broker=broker.name).set(
                    getattr(stats, field)
                )
            reg.gauge("broker_route_cache_hits", broker=broker.name).set(
                broker.route_cache_hits
            )
            reg.gauge("broker_route_cache_misses", broker=broker.name).set(
                broker.route_cache_misses
            )
            trie = broker._subscriptions
            reg.gauge("broker_topic_match_cache_hits", broker=broker.name).set(
                trie.match_cache_hits
            )
            reg.gauge("broker_topic_match_cache_misses", broker=broker.name).set(
                trie.match_cache_misses
            )
            reg.gauge("broker_traffic_payload_bytes", broker=broker.name).set(
                broker.traffic.total_payload_bytes
            )

        received = published = bytes_received = bytes_published = 0
        dedup_entries = 0
        for client in experiment.clients:
            mqtt = client.mqtt
            received += mqtt.messages_received
            published += mqtt.messages_published
            bytes_received += mqtt.bytes_received
            bytes_published += mqtt.bytes_published
            dedup_entries += len(mqtt._delivered_qos2)
        reg.gauge("clients_messages_received").set(received)
        reg.gauge("clients_messages_published").set(published)
        reg.gauge("clients_bytes_received").set(bytes_received)
        reg.gauge("clients_bytes_published").set(bytes_published)
        reg.gauge("clients_qos2_dedup_entries").set(dedup_entries)

        for field in _ENDPOINT_STATS_FIELDS:
            reg.gauge(f"endpoint_{field}").set(
                sum(getattr(e.stats, field) for e in _endpoints(experiment))
            )

        # Update-codec counters (all zero when no codec is configured, so the
        # metrics schema stays stable across scenarios).
        codecs = [
            codec
            for codec in (
                getattr(e, "update_codec", None) for e in _endpoints(experiment)
            )
            if codec is not None
        ]
        for field in _CODEC_STATS_FIELDS:
            reg.gauge(f"codec_{field}").set(
                sum(getattr(codec.stats, field) for codec in codecs)
            )

        buffered_bytes = buffered_pending = 0
        for client in experiment.clients:
            buffer = getattr(client, "buffer", None)
            if buffer is not None:
                buffered_bytes += buffer.buffered_bytes
                buffered_pending += len(buffer)
        reg.gauge("aggregation_buffered_bytes").set(buffered_bytes)
        reg.gauge("aggregation_buffered_contributions").set(buffered_pending)

        lifecycle = getattr(experiment, "lifecycle", None)
        if lifecycle is not None:
            reg.gauge("lifecycle_round_index").set(lifecycle.round_index)
            reg.gauge("lifecycle_epoch").set(lifecycle.epoch)
            reg.gauge("lifecycle_transitions").set(lifecycle.transitions)
            reg.gauge("lifecycle_roster_size").set(len(lifecycle.roster))

        if injector is not None:
            reg.gauge("faults_started").set(injector.faults_started)
            reg.gauge("faults_ended").set(injector.faults_ended)
            reg.gauge("faults_crashes_injected").set(injector.crashes_injected)
            reg.gauge("faults_anchors_fired").set(injector.anchors_fired)

    registry.register_collector(collect)
    return registry


def attach_experiment_tracer(
    experiment: Any,
    tracer: Tracer,
    injector: Optional[Any] = None,
) -> LifecycleTracer:
    """Point every trace hook in a compiled experiment at ``tracer``.

    Wires the scheduler's delivery spans, a lifecycle subscriber for round
    phases (primed like the experiment's own ``PhaseTimer``), MQTTFC
    per-chunk codec instants, and the fault injector's window spans.
    """
    tracer.clock = experiment.clock.now
    experiment.scheduler.tracer = tracer
    for endpoint in _endpoints(experiment):
        endpoint.tracer = tracer
    if injector is not None:
        injector.tracer = tracer
    lifecycle_tracer = LifecycleTracer(tracer)
    lifecycle_tracer.prime(
        experiment.lifecycle.phase,
        experiment.lifecycle.round_index,
        experiment.clock.now(),
    )
    experiment.lifecycle.subscribe(lifecycle_tracer.on_event)
    return lifecycle_tracer
