"""Structured stderr logging for the scenario surfaces.

Built on stdlib :mod:`logging` with a context-prefixing adapter:
``get_logger("repro.scenario", scenario="baseline", seed=3)`` renders

    repro.scenario [scenario=baseline seed=3] store: hit (/path/db.sqlite)

Everything goes to **stderr** — stdout stays reserved for rendered results
so cached-run byte-identity checks (``cmp`` over captured stdout) keep
working.  The rendered message text itself is stable: CI greps fixed
substrings like ``store: 12 cached, 0 executed`` out of stderr, and the
adapter only ever *prefixes* context, never rewrites the message.
"""

from __future__ import annotations

import logging
import sys
from typing import Any, Dict, MutableMapping, Optional, Tuple

__all__ = ["configure_logging", "get_logger"]

_HANDLER: Optional[logging.Handler] = None


def configure_logging(level: int = logging.INFO, stream: Any = None) -> logging.Handler:
    """Install (once) a stderr handler on the ``repro`` logger tree.

    Idempotent: repeated calls return the existing handler.  Passing an
    explicit ``stream`` replaces the handler (used by tests to capture
    output).
    """
    global _HANDLER
    root = logging.getLogger("repro")
    if _HANDLER is not None and stream is None:
        return _HANDLER
    if _HANDLER is not None:
        root.removeHandler(_HANDLER)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(logging.Formatter("%(name)s %(message)s"))
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    _HANDLER = handler
    return handler


class ContextAdapter(logging.LoggerAdapter):
    """Prefixes ``key=value`` context fields onto every message."""

    def process(
        self, msg: str, kwargs: MutableMapping[str, Any]
    ) -> Tuple[str, MutableMapping[str, Any]]:
        context: Dict[str, Any] = dict(self.extra or {})
        if context:
            rendered = " ".join(f"{key}={context[key]}" for key in sorted(context))
            return f"[{rendered}] {msg}", kwargs
        return msg, kwargs

    def bind(self, **fields: Any) -> "ContextAdapter":
        """Return a child adapter with additional context fields."""
        merged = dict(self.extra or {})
        merged.update(fields)
        return ContextAdapter(self.logger, merged)


def get_logger(name: str = "repro", **context: Any) -> ContextAdapter:
    """Return a context-carrying logger writing structured lines to stderr."""
    configure_logging()
    return ContextAdapter(logging.getLogger(name), context)
