"""Trace-file tooling: load and summarize flight-recorder exports.

Handles both export formats the :class:`~repro.obs.trace.Tracer` writes —
JSONL (one event per line, timestamps in sim seconds) and Chrome
``trace_event`` JSON (timestamps in integer microseconds) — and normalizes
everything back to sim seconds for reporting.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

__all__ = ["load_trace_events", "summarize_trace", "trace_summary_rows"]


def load_trace_events(path: str) -> List[Dict[str, Any]]:
    """Load trace events from a ``.trace.json`` / ``.trace.jsonl`` file.

    Returns normalized event dicts (``ph``/``name``/``cat``/``ts``/``dur``
    with times in sim seconds); Chrome metadata (``"M"``) records are
    dropped.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    stripped = text.lstrip()
    if not stripped:
        return []
    # The Chrome export is one JSON object; JSONL is one object per line.
    # A whole-document parse disambiguates (a multi-line JSONL file fails it).
    document: Any = None
    if stripped.startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
    if isinstance(document, dict):
        if "traceEvents" not in document:
            if "ph" in document:
                return [document]
            raise ValueError("not a Chrome trace_event document")
        events = []
        for raw in document["traceEvents"]:
            if raw.get("ph") == "M":
                continue
            event = {
                "ph": raw.get("ph", "i"),
                "name": raw.get("name", "?"),
                "cat": raw.get("cat", "?"),
                "ts": float(raw.get("ts", 0)) / 1_000_000.0,
            }
            if "dur" in raw:
                event["dur"] = float(raw["dur"]) / 1_000_000.0
            events.append(event)
        return events
    events = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        if not isinstance(raw, dict) or "ph" not in raw:
            raise ValueError("not a tracer JSONL file")
        events.append(raw)
    return events


def summarize_trace(path: str) -> Dict[str, Any]:
    """Aggregate a trace file into per-(category, name) statistics."""
    events = load_trace_events(path)
    groups: Dict[Any, Dict[str, Any]] = {}
    spans = instants = anomalies = 0
    span_names = set()
    for event in events:
        ph = event.get("ph")
        cat = event.get("cat", "?")
        name = event.get("name", "?")
        if ph == "X":
            spans += 1
            span_names.add(name)
        elif ph == "i":
            instants += 1
            if cat == "anomaly":
                anomalies += 1
        group = groups.setdefault(
            (cat, name),
            {"cat": cat, "name": name, "count": 0, "total_s": 0.0, "max_s": 0.0},
        )
        group["count"] += 1
        duration = float(event.get("dur", 0.0))
        group["total_s"] += duration
        if duration > group["max_s"]:
            group["max_s"] = duration
    return {
        "path": path,
        "events": len(events),
        "spans": spans,
        "instants": instants,
        "anomalies": anomalies,
        "span_names": span_names,
        "groups": groups,
    }


def trace_summary_rows(summary: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Render a summary into table rows, largest total duration first."""
    rows = []
    for group in sorted(
        summary["groups"].values(),
        key=lambda g: (-g["total_s"], g["cat"], g["name"]),
    ):
        count = group["count"]
        rows.append(
            {
                "cat": group["cat"],
                "name": group["name"],
                "count": count,
                "total_s": group["total_s"],
                "mean_s": group["total_s"] / count if count else 0.0,
                "max_s": group["max_s"],
            }
        )
    return rows
