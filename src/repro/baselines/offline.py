"""Offline (local, non-federated) training baseline.

This is the "Offline Training" curve of the paper's Fig. 7: a single pipeline
trains the same MLP on a centrally held fraction of the dataset (5 % in the
paper, versus 1 % per client for the 5 FL clients), and test accuracy is
recorded after every block of ``local_epochs`` epochs so the curve is directly
comparable to the per-round FL accuracies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.data import ArrayDataset, DataLoader
from repro.ml.models import ClassifierModel, make_paper_mlp
from repro.ml.optim import Adam
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_in_range, require_positive

__all__ = ["OfflineTrainingBaseline", "OfflineResult"]


@dataclass
class OfflineResult:
    """Per-round accuracies of the offline training baseline."""

    accuracies: List[float] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    num_train_samples: int = 0

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last round (0.0 if no rounds ran)."""
        return self.accuracies[-1] if self.accuracies else 0.0


class OfflineTrainingBaseline:
    """Train one model locally on a data fraction and track round-wise accuracy.

    Parameters
    ----------
    train_set, test_set:
        The full training pool and the held-out evaluation set.
    data_fraction:
        Fraction of ``train_set`` given to the local pipeline (the paper uses
        5 % to match 5 clients × 1 %).
    rounds:
        Number of "rounds"; each round trains ``local_epochs`` epochs and then
        evaluates, mirroring the FL round structure.
    local_epochs, batch_size, learning_rate:
        Optimization hyper-parameters, kept identical to the FL clients.
    seed:
        Controls the subsample selection, weight init and batch shuffling.
    """

    def __init__(
        self,
        train_set: ArrayDataset,
        test_set: ArrayDataset,
        data_fraction: float = 0.05,
        rounds: int = 10,
        local_epochs: int = 5,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 42,
        model: Optional[ClassifierModel] = None,
    ) -> None:
        require_in_range(data_fraction, "data_fraction", 0.0, 1.0, inclusive=False)
        require_positive(rounds, "rounds")
        require_positive(local_epochs, "local_epochs")
        self.seeds = SeedSequenceFactory(seed)
        self.rounds = int(rounds)
        self.local_epochs = int(local_epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.test_set = test_set

        count = max(1, int(round(len(train_set) * data_fraction)))
        indices = self.seeds.generator("subsample").choice(len(train_set), size=count, replace=False)
        self.train_subset = train_set.subset(indices)

        if model is None:
            network = make_paper_mlp(input_dim=train_set.num_features, num_classes=test_set.num_classes, seed=seed)
            model = ClassifierModel(network, name="offline_mlp")
        self.model = model
        self.optimizer = Adam(self.model.network, lr=self.learning_rate)

    def run(self) -> OfflineResult:
        """Train for all rounds; returns the accuracy/loss trajectory."""
        result = OfflineResult(num_train_samples=len(self.train_subset))
        loader = DataLoader(
            self.train_subset,
            batch_size=self.batch_size,
            shuffle=True,
            rng=self.seeds.generator("loader"),
        )
        for _round_index in range(self.rounds):
            epoch_losses = [
                self.model.train_epoch(loader, self.optimizer) for _ in range(self.local_epochs)
            ]
            evaluation = self.model.evaluate(self.test_set)
            result.accuracies.append(float(evaluation["accuracy"]))
            result.losses.append(float(np.mean(epoch_losses)))
        return result
