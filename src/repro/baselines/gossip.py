"""Fully decentralized (gossip) federated learning baseline.

The third topology in the paper's Fig. 1: no coordinator and no aggregation
hierarchy — peers exchange models directly and average with their neighbours.
The paper argues this avoids any single point of memory/bandwidth overload
"but that could come at a cost of extra time for training/aggregation due to
the sequential communication"; the delay estimate here models exactly that
sequential peer-to-peer exchange so the topology ablation can compare all
three arrangements on both accuracy and delay.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.aggregation import UniformAverage, ModelContribution
from repro.ml.data import ArrayDataset, DataLoader
from repro.ml.models import ClassifierModel, make_paper_mlp
from repro.ml.optim import Adam
from repro.ml.state import state_dict_nbytes
from repro.sim.costs import CostModel
from repro.sim.device import DeviceFleet
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

__all__ = ["GossipFLBaseline", "GossipResult"]


@dataclass
class GossipResult:
    """Round-wise metrics of the gossip FL baseline."""

    accuracies: List[float] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    round_delays_s: List[float] = field(default_factory=list)

    @property
    def final_accuracy(self) -> float:
        """Mean final accuracy across peers (they may not have identical models)."""
        return self.accuracies[-1] if self.accuracies else 0.0

    @property
    def total_delay_s(self) -> float:
        """Total simulated processing delay over all rounds."""
        return float(sum(self.round_delays_s))


class GossipFLBaseline:
    """Ring-neighbourhood gossip averaging.

    Each round every peer trains locally, then averages its parameters with
    its ``neighbours`` nearest peers on a ring (a standard gossip topology).
    Because exchanges are peer-to-peer and sequential per device, the round
    delay is ``train + neighbours · (serialize + transfer + average)`` for the
    slowest device — there is no aggregation parallelism to exploit.
    """

    def __init__(
        self,
        client_datasets: Dict[str, ArrayDataset],
        test_set: ArrayDataset,
        rounds: int = 10,
        local_epochs: int = 5,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        neighbours: int = 2,
        seed: int = 42,
        fleet: Optional[DeviceFleet] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if not client_datasets:
            raise ValueError("gossip FL needs at least one client dataset")
        require_positive(rounds, "rounds")
        require_positive(neighbours, "neighbours")
        self.client_ids = sorted(client_datasets)
        if neighbours >= len(self.client_ids):
            neighbours = max(1, len(self.client_ids) - 1)
        self.client_datasets = dict(client_datasets)
        self.test_set = test_set
        self.rounds = int(rounds)
        self.local_epochs = int(local_epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.neighbours = int(neighbours)
        self.seeds = SeedSequenceFactory(seed)
        self.fleet = fleet or DeviceFleet.homogeneous(len(self.client_ids), prefix="peer", seed=seed)
        self.cost = cost_model or CostModel()

        input_dim = test_set.num_features
        num_classes = test_set.num_classes
        self.models: Dict[str, ClassifierModel] = {}
        self.optimizers: Dict[str, Adam] = {}
        for client_id in self.client_ids:
            network = make_paper_mlp(input_dim=input_dim, num_classes=num_classes, seed=seed)
            self.models[client_id] = ClassifierModel(network, name=client_id)
            self.optimizers[client_id] = Adam(network, lr=self.learning_rate)
        self.averager = UniformAverage()

    def _neighbours_of(self, index: int) -> List[str]:
        n = len(self.client_ids)
        out = []
        for offset in range(1, self.neighbours + 1):
            out.append(self.client_ids[(index + offset) % n])
        return out

    def run_round(self, round_index: int) -> Dict[str, float]:
        """One gossip round: local training then neighbour averaging.

        Returns a dict with the mean training loss and the simulated delay.
        """
        losses = []
        for client_id in self.client_ids:
            model = self.models[client_id]
            loader = DataLoader(
                self.client_datasets[client_id],
                batch_size=self.batch_size,
                shuffle=True,
                rng=self.seeds.generator("loader", client_id, round_index),
            )
            optimizer = self.optimizers[client_id]
            epoch_losses = [model.train_epoch(loader, optimizer) for _ in range(self.local_epochs)]
            losses.append(float(np.mean(epoch_losses)))

        # Snapshot all post-training states, then average each peer with its
        # ring neighbours (synchronous gossip step).
        snapshots = {cid: self.models[cid].state_dict() for cid in self.client_ids}
        for index, client_id in enumerate(self.client_ids):
            contributions = [
                ModelContribution(state=snapshots[client_id], sender_id=client_id, round_index=round_index)
            ]
            for neighbour in self._neighbours_of(index):
                contributions.append(
                    ModelContribution(state=snapshots[neighbour], sender_id=neighbour, round_index=round_index)
                )
            self.models[client_id].load_state_dict(self.averager.aggregate(contributions))

        # Delay: sequential peer-to-peer exchanges, bounded by the slowest peer.
        num_params = self.models[self.client_ids[0]].num_parameters
        payload = state_dict_nbytes(snapshots[self.client_ids[0]], "float32")
        per_client_delay = []
        fleet_ids = self.fleet.device_ids
        for index, client_id in enumerate(self.client_ids):
            device = self.fleet.profile(fleet_ids[index % len(fleet_ids)])
            train = self.cost.training_time(
                device, len(self.client_datasets[client_id]), self.local_epochs, num_params
            )
            exchange = 0.0
            for _ in range(self.neighbours):
                link = device.link_profile()
                exchange += (
                    self.cost.serialization_time(device, payload)
                    + 2 * link.transfer_time(payload)  # request/response with the peer
                    + self.cost.aggregation_time(device, 2, num_params, payload)
                )
            per_client_delay.append(train + exchange)
        delay = float(max(per_client_delay))
        return {"loss": float(np.mean(losses)), "delay_s": delay}

    def run(self) -> GossipResult:
        """Run all rounds; accuracy is the mean test accuracy across peers."""
        result = GossipResult()
        for round_index in range(self.rounds):
            round_metrics = self.run_round(round_index)
            accuracies = [self.models[cid].accuracy(self.test_set) for cid in self.client_ids]
            result.accuracies.append(float(np.mean(accuracies)))
            result.losses.append(round_metrics["loss"])
            result.round_delays_s.append(round_metrics["delay_s"])
        return result
