"""Baselines the paper compares against (explicitly or implicitly).

* :mod:`repro.baselines.offline` — local ("offline") training of a single
  model on a centralized data fraction; the comparison line in Fig. 7.
* :mod:`repro.baselines.centralized` — classic server-orchestrated FedAvg
  without any MQTT machinery; used by the topology ablation to sanity-check
  that SDFLMQ's hierarchical FedAvg matches a reference implementation.
* :mod:`repro.baselines.gossip` — fully decentralized (peer-to-peer gossip)
  FL, the third topology in the paper's Fig. 1, including its sequential-
  communication delay model.
"""

from repro.baselines.offline import OfflineTrainingBaseline, OfflineResult
from repro.baselines.centralized import CentralizedFedAvgBaseline, CentralizedResult
from repro.baselines.gossip import GossipFLBaseline, GossipResult

__all__ = [
    "OfflineTrainingBaseline",
    "OfflineResult",
    "CentralizedFedAvgBaseline",
    "CentralizedResult",
    "GossipFLBaseline",
    "GossipResult",
]
