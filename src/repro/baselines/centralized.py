"""Classic centralized FedAvg baseline (no MQTT, no hierarchy).

This is the reference implementation of "centralized FL" from the paper's
Fig. 1: a logical server holds the global model, every client trains locally
on its own shard and returns its weights, and the server averages them.  It is
used (a) by the topology ablation bench, and (b) by tests as ground truth that
SDFLMQ's hierarchical FedAvg produces the same global model a flat FedAvg
would (weighted means compose exactly).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.aggregation import FedAvg, ModelContribution
from repro.ml.data import ArrayDataset, DataLoader
from repro.ml.models import ClassifierModel, make_paper_mlp
from repro.ml.optim import Adam
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_positive

__all__ = ["CentralizedFedAvgBaseline", "CentralizedResult"]


@dataclass
class CentralizedResult:
    """Round-wise metrics of the centralized FedAvg baseline."""

    accuracies: List[float] = field(default_factory=list)
    losses: List[float] = field(default_factory=list)
    client_samples: Dict[str, int] = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        """Accuracy after the last round (0.0 if no rounds ran)."""
        return self.accuracies[-1] if self.accuracies else 0.0


class CentralizedFedAvgBaseline:
    """Plain FedAvg with a single logical server.

    Parameters
    ----------
    client_datasets:
        Per-client training shards (keyed by client id).
    test_set:
        Held-out evaluation set.
    rounds, local_epochs, batch_size, learning_rate, seed:
        Same hyper-parameters as the SDFLMQ experiments.
    """

    def __init__(
        self,
        client_datasets: Dict[str, ArrayDataset],
        test_set: ArrayDataset,
        rounds: int = 10,
        local_epochs: int = 5,
        batch_size: int = 32,
        learning_rate: float = 1e-3,
        seed: int = 42,
    ) -> None:
        if not client_datasets:
            raise ValueError("centralized FedAvg needs at least one client dataset")
        require_positive(rounds, "rounds")
        require_positive(local_epochs, "local_epochs")
        self.client_datasets = dict(client_datasets)
        self.test_set = test_set
        self.rounds = int(rounds)
        self.local_epochs = int(local_epochs)
        self.batch_size = int(batch_size)
        self.learning_rate = float(learning_rate)
        self.seeds = SeedSequenceFactory(seed)

        input_dim = test_set.num_features
        num_classes = test_set.num_classes
        self.global_model = ClassifierModel(
            make_paper_mlp(input_dim=input_dim, num_classes=num_classes, seed=seed), name="global"
        )
        self.client_models: Dict[str, ClassifierModel] = {}
        self.client_optimizers: Dict[str, Adam] = {}
        for client_id in sorted(self.client_datasets):
            network = make_paper_mlp(input_dim=input_dim, num_classes=num_classes, seed=seed)
            model = ClassifierModel(network, name=client_id)
            self.client_models[client_id] = model
            self.client_optimizers[client_id] = Adam(network, lr=self.learning_rate)
        self.aggregator = FedAvg()

    def run_round(self, round_index: int) -> float:
        """Run one FedAvg round; returns the mean client training loss."""
        contributions: List[ModelContribution] = []
        losses: List[float] = []
        global_state = self.global_model.state_dict()
        for client_id in sorted(self.client_datasets):
            model = self.client_models[client_id]
            model.load_state_dict(global_state)
            loader = DataLoader(
                self.client_datasets[client_id],
                batch_size=self.batch_size,
                shuffle=True,
                rng=self.seeds.generator("loader", client_id, round_index),
            )
            optimizer = self.client_optimizers[client_id]
            epoch_losses = [model.train_epoch(loader, optimizer) for _ in range(self.local_epochs)]
            losses.append(float(np.mean(epoch_losses)))
            contributions.append(
                ModelContribution(
                    state=model.state_dict(),
                    weight=float(len(self.client_datasets[client_id])),
                    sender_id=client_id,
                    round_index=round_index,
                )
            )
        aggregated = self.aggregator.aggregate(contributions)
        self.global_model.load_state_dict(aggregated)
        return float(np.mean(losses))

    def run(self) -> CentralizedResult:
        """Run all rounds; returns the accuracy/loss trajectory."""
        result = CentralizedResult(
            client_samples={cid: len(ds) for cid, ds in self.client_datasets.items()}
        )
        for round_index in range(self.rounds):
            mean_loss = self.run_round(round_index)
            evaluation = self.global_model.evaluate(self.test_set)
            result.accuracies.append(float(evaluation["accuracy"]))
            result.losses.append(mean_loss)
        return result
