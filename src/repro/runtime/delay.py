"""Critical-path delay model for one FL round.

The paper's Fig. 8 metric is the *total processing delay* of running N FL
rounds: local training, moving model parameters through the broker,
(hierarchical) aggregation, and disseminating the new global model.  Because
the reproduction executes in-process, wall-clock time is meaningless; instead
this model walks the round's aggregation tree and computes when each node's
output becomes available, using:

* the cost model (:class:`repro.sim.CostModel`) for training, aggregation and
  serialization times,
* each device's link profile for transfer times, with *serialized reception*
  at every aggregator — an aggregator's downlink is a shared resource, so the
  k-th arriving model queues behind the previous ones.  This queueing term is
  what makes a single central aggregator progressively worse as the client
  count grows, which is the effect Fig. 8 illustrates.

The model is intentionally independent of the messaging layer: it takes a
:class:`~repro.core.clustering.ClusterTopology` plus per-client sample counts
and payload sizes, so unit tests can exercise it directly and the experiment
harness can apply it to the topology the coordinator actually produced.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.core.clustering import ClusterTopology
from repro.mqtt.network import NetworkModel
from repro.sim.costs import CostModel
from repro.sim.device import DeviceFleet, DeviceProfile
from repro.utils.validation import require_positive

__all__ = ["RoundDelayBreakdown", "CriticalPathDelayModel"]


@dataclass
class RoundDelayBreakdown:
    """Decomposition of one round's simulated processing delay (seconds)."""

    round_index: int
    training_s: float = 0.0
    upload_s: float = 0.0
    aggregation_s: float = 0.0
    distribution_s: float = 0.0
    coordination_s: float = 0.0
    total_s: float = 0.0
    #: Simulated time the event scheduler actually spent moving the round's
    #: messages (the span of ``deliver_at`` timestamps it drained).  The
    #: analytic critical-path terms above model the paper's delay figure;
    #: this field is the *observed* messaging makespan of the event-driven
    #: runtime, letting experiments cross-check model against execution.
    messaging_s: float = 0.0
    per_client_completion_s: Dict[str, float] = field(default_factory=dict)
    aggregator_busy_s: Dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, float]:
        """Scalar fields as a plain dict (for tables and JSON dumps)."""
        return {
            "round_index": self.round_index,
            "training_s": self.training_s,
            "upload_s": self.upload_s,
            "aggregation_s": self.aggregation_s,
            "distribution_s": self.distribution_s,
            "coordination_s": self.coordination_s,
            "messaging_s": self.messaging_s,
            "total_s": self.total_s,
        }


class CriticalPathDelayModel:
    """Computes per-round processing delay from a topology and device fleet."""

    def __init__(
        self,
        fleet: DeviceFleet,
        cost_model: Optional[CostModel] = None,
        network: Optional[NetworkModel] = None,
        parameter_server_profile: Optional[DeviceProfile] = None,
    ) -> None:
        self.fleet = fleet
        self.cost = cost_model or CostModel()
        self.network = network or NetworkModel()
        # The parameter server runs on an edge server unless told otherwise.
        self.parameter_server_profile = parameter_server_profile or DeviceProfile(
            device_id="parameter_server",
            tier="server",
            compute_speed=4.0,
            memory_bytes=8 * 1024**3,
            bandwidth_bps=125e6,
            latency_s=0.002,
        )

    # ------------------------------------------------------------ primitives

    def _uplink_time(self, device: DeviceProfile, payload_bytes: int) -> float:
        """Device → broker transfer plus broker processing."""
        link = device.link_profile()
        return link.transfer_time(payload_bytes) + self.network.broker_processing_time(payload_bytes)

    def _downlink_time(self, device: DeviceProfile, payload_bytes: int) -> float:
        """Broker → device transfer."""
        return device.link_profile().transfer_time(payload_bytes)

    def _train_time(self, device: DeviceProfile, num_samples: int, epochs: int, num_parameters: int) -> float:
        return self.cost.training_time(device, num_samples, epochs, num_parameters)

    # ----------------------------------------------------------------- round

    def round_delay(
        self,
        topology: ClusterTopology,
        round_index: int,
        num_samples: Mapping[str, int],
        payload_bytes: int,
        num_parameters: int,
        epochs: int = 1,
        available_memory: Optional[Mapping[str, int]] = None,
        clients_informed: int = 0,
    ) -> RoundDelayBreakdown:
        """Compute the critical-path delay of one FL round.

        Parameters
        ----------
        topology:
            The round's aggregation topology.
        round_index:
            Index used only for labelling the breakdown.
        num_samples:
            Per-client local dataset sizes (drives training time).
        payload_bytes:
            Size of one serialized model update on the wire.
        num_parameters:
            Scalar parameter count of the model (drives aggregation time).
        epochs:
            Local epochs per round.
        available_memory:
            Optional per-client available memory (bytes); defaults to each
            device's full capacity.  Drives the overflow penalty.
        clients_informed:
            Number of clients the coordinator contacted for role
            (re)arrangement before this round (drives coordination time).
        """
        require_positive(payload_bytes, "payload_bytes")
        require_positive(num_parameters, "num_parameters")
        breakdown = RoundDelayBreakdown(round_index=round_index)

        # Phase 1+2+3: recursive completion times up the aggregation tree.
        ready_at: Dict[str, float] = {}
        train_times: Dict[str, float] = {}
        upload_times: Dict[str, float] = {}

        def node_output_ready(client_id: str) -> float:
            """Simulated time at which this node's output has *left* the node."""
            if client_id in ready_at:
                return ready_at[client_id]
            node = topology.node(client_id)
            device = self.fleet.profile(client_id)
            train = 0.0
            if node.role.trains:
                train = self._train_time(
                    device, int(num_samples.get(client_id, 0)), epochs, num_parameters
                )
            train_times[client_id] = train

            if not node.role.aggregates:
                # Leaf trainer: output leaves after training + serialize + uplink.
                leave = train + self.cost.serialization_time(device, payload_bytes) + self._uplink_time(
                    device, payload_bytes
                )
                ready_at[client_id] = leave
                upload_times[client_id] = leave - train
                return leave

            # Aggregator: wait for all children's payloads to arrive (serialized
            # reception on this device's downlink), and for its own training.
            arrivals = []
            receive_cursor = 0.0
            children_sorted = sorted(node.children, key=node_output_ready)
            for child in children_sorted:
                child_ready = node_output_ready(child)
                receive_start = max(child_ready, receive_cursor)
                receive_cursor = receive_start + self._downlink_time(device, payload_bytes)
                arrivals.append(receive_cursor)
            inputs_ready = max(arrivals) if arrivals else 0.0
            start_aggregation = max(inputs_ready, train)

            fan_in = len(node.children) + (1 if node.role.trains else 0)
            memory = None
            if available_memory is not None and client_id in available_memory:
                memory = int(available_memory[client_id])
            agg_time = self.cost.aggregation_time(
                device,
                num_models=fan_in,
                num_parameters=num_parameters,
                payload_bytes=payload_bytes,
                available_memory_bytes=memory,
            )
            breakdown.aggregator_busy_s[client_id] = agg_time
            finish = start_aggregation + agg_time
            # Send the aggregate onwards (to the parent or the parameter server).
            leave = finish + self.cost.serialization_time(device, payload_bytes) + self._uplink_time(
                device, payload_bytes
            )
            ready_at[client_id] = leave
            upload_times[client_id] = leave - finish
            return leave

        root_leave = node_output_ready(topology.root_id)
        breakdown.per_client_completion_s = dict(ready_at)

        # Phase 4: parameter server stores the model and the global update
        # synchronizer pushes it to every contributor; the round ends when the
        # slowest client has received it.
        ps = self.parameter_server_profile
        store_time = self.cost.serialization_time(ps, payload_bytes) + self._downlink_time(ps, payload_bytes)
        slowest_downlink = max(
            self._downlink_time(self.fleet.profile(cid), payload_bytes) for cid in topology.client_ids
        )
        distribution = store_time + self._uplink_time(ps, payload_bytes) + slowest_downlink

        coordination = self.cost.coordination_time(clients_informed)

        breakdown.training_s = max(train_times.values()) if train_times else 0.0
        breakdown.upload_s = max(upload_times.values()) if upload_times else 0.0
        breakdown.aggregation_s = sum(breakdown.aggregator_busy_s.values())
        breakdown.distribution_s = distribution
        breakdown.coordination_s = coordination
        breakdown.total_s = root_leave + distribution + coordination
        return breakdown
