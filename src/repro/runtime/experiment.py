"""End-to-end FL experiment orchestration.

:class:`FLExperiment` wires a complete SDFLMQ deployment together — broker,
coordinator, parameter server, N clients with their local datasets and device
profiles — and runs the per-round choreography the paper describes:

1. every client trains locally for ``local_epochs`` epochs,
2. every client sends its model for aggregation (``send_local``),
3. the aggregation cascade runs through the hierarchy to the parameter server,
4. the global update synchronizer pushes the new global model to all clients,
5. clients report readiness + stats, the coordinator advances the round and
   re-runs the load balancer.

Alongside the learning metrics, the harness computes the simulated *total
processing delay* of every round with the critical-path model, which is the
quantity Fig. 8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.client import SDFLMQClient
from repro.core.clustering import ClusteringConfig
from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.parameter_server import ParameterServer
from repro.core.role_optimizers import get_policy
from repro.core.session import SessionState
from repro.ml.data import ArrayDataset, DataLoader, train_test_split
from repro.ml.datasets import SyntheticDigitsConfig, synthetic_digits
from repro.ml.models import ClassifierModel, make_paper_mlp
from repro.ml.optim import Adam
from repro.ml.partition import dirichlet_partition, iid_partition, shard_partition
from repro.mqtt.bridge import BrokerBridge
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.network import NetworkModel
from repro.mqttfc.compression import CompressionConfig
from repro.runtime.delay import CriticalPathDelayModel, RoundDelayBreakdown
from repro.runtime.pump import MessagePump
from repro.runtime.scheduler import EventScheduler
from repro.sim.clock import SimulationClock
from repro.sim.costs import CostModel
from repro.sim.device import DeviceFleet
from repro.sim.events import EventLog
from repro.sim.resources import ResourceAccountant
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_in_range, require_positive

__all__ = ["ExperimentConfig", "RoundResult", "ExperimentResult", "FLExperiment"]


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one FL run.

    The defaults correspond to the paper's Fig. 7 setup: 5 clients, 1 % of the
    (synthetic) digit dataset each, a single-hidden-layer MLP, FedAvg, 5 local
    epochs, 10 FL rounds, 2-layer hierarchical clustering with 30 % of clients
    acting as aggregators.
    """

    name: str = "sdflmq"
    # Federation shape
    num_clients: int = 5
    fl_rounds: int = 10
    local_epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    # Dataset
    dataset_samples: int = 6000
    test_fraction: float = 0.15
    input_side: int = 16
    num_classes: int = 10
    client_data_fraction: float = 0.01
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    shards_per_client: int = 2
    # Topology / coordination
    clustering_policy: str = "hierarchical"
    aggregator_fraction: float = 0.30
    aggregation: str = "fedavg"
    role_policy: str = "static"
    rebalance_every_round: bool = True
    proximal_mu: float = 0.0
    # Devices
    device_tier: str = "laptop"
    heterogeneous_devices: bool = False
    memory_pressure: float = 0.0
    device_memory_override_bytes: Optional[int] = None
    # Transport
    compression_enabled: bool = True
    chunk_bytes: int = 256 * 1024
    num_regions: int = 1
    # Behaviour
    train_for_real: bool = True
    seed: int = 42
    session_id: str = "session_01"
    model_name: str = "mlp"

    def __post_init__(self) -> None:
        require_positive(self.num_clients, "num_clients")
        require_positive(self.fl_rounds, "fl_rounds")
        require_positive(self.local_epochs, "local_epochs")
        require_positive(self.batch_size, "batch_size")
        require_positive(self.learning_rate, "learning_rate")
        require_positive(self.dataset_samples, "dataset_samples")
        require_in_range(self.test_fraction, "test_fraction", 0.0, 0.9, inclusive=False)
        require_in_range(self.client_data_fraction, "client_data_fraction", 0.0, 1.0, inclusive=False)
        if self.partition not in ("iid", "dirichlet", "shard"):
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        if self.clustering_policy not in ("hierarchical", "central"):
            raise ValueError(f"unknown clustering policy {self.clustering_policy!r}")
        require_in_range(self.memory_pressure, "memory_pressure", 0.0, 1.0)
        require_positive(self.num_regions, "num_regions")
        require_positive(self.proximal_mu, "proximal_mu", strict=False)
        if self.device_memory_override_bytes is not None:
            require_positive(self.device_memory_override_bytes, "device_memory_override_bytes")


@dataclass
class RoundResult:
    """Metrics for one completed FL round."""

    round_index: int
    test_accuracy: float
    test_loss: float
    mean_train_loss: float
    delay: RoundDelayBreakdown
    traffic_bytes: int
    messages_routed: int
    roles_changed: int
    overflow_events: int
    aggregator_ids: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        """Flat dict row (used by the benchmark tables)."""
        row = {
            "round": self.round_index,
            "test_accuracy": self.test_accuracy,
            "test_loss": self.test_loss,
            "mean_train_loss": self.mean_train_loss,
            "round_delay_s": self.delay.total_s,
            "traffic_bytes": self.traffic_bytes,
            "messages_routed": self.messages_routed,
            "roles_changed": self.roles_changed,
            "overflow_events": self.overflow_events,
        }
        return row


@dataclass
class ExperimentResult:
    """Aggregate outcome of one FL experiment."""

    config: ExperimentConfig
    rounds: List[RoundResult]
    final_accuracy: float
    total_delay_s: float
    total_traffic_bytes: int
    total_messages: int
    peak_aggregator_memory_bytes: int
    role_changes_total: int

    @property
    def accuracies(self) -> List[float]:
        """Per-round test accuracies in order."""
        return [r.test_accuracy for r in self.rounds]

    @property
    def round_delays(self) -> List[float]:
        """Per-round simulated processing delays in seconds."""
        return [r.delay.total_s for r in self.rounds]

    def as_rows(self) -> List[Dict[str, float]]:
        """Row-per-round table representation."""
        return [r.as_dict() for r in self.rounds]


class FLExperiment:
    """Builds and runs one complete SDFLMQ federated-learning experiment."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.seeds = SeedSequenceFactory(self.config.seed)
        self._built = False

        # Populated by setup()
        self.clock: SimulationClock
        self.broker: MQTTBroker
        self.fleet: DeviceFleet
        self.network: NetworkModel
        self.resources: ResourceAccountant
        self.event_log: EventLog
        self.coordinator: Coordinator
        self.parameter_server: ParameterServer
        self.pump: MessagePump
        self.scheduler: EventScheduler
        self.clients: List[SDFLMQClient] = []
        self.client_models: Dict[str, ClassifierModel] = {}
        self.client_datasets: Dict[str, ArrayDataset] = {}
        self.client_optimizers: Dict[str, Adam] = {}
        self.test_set: ArrayDataset
        self.delay_model: CriticalPathDelayModel
        self.cost_model: CostModel = cost_model or CostModel()

    # -------------------------------------------------------------- datasets

    def _build_datasets(self) -> None:
        config = self.config
        dataset = synthetic_digits(
            SyntheticDigitsConfig(
                num_samples=config.dataset_samples,
                num_classes=config.num_classes,
                side=config.input_side,
                seed=self.seeds.seed("dataset"),
            )
        )
        train_set, test_set = train_test_split(
            dataset, test_fraction=config.test_fraction, rng=self.seeds.generator("split")
        )
        self.test_set = test_set

        per_client = max(1, int(round(len(train_set) * config.client_data_fraction)))
        needed = min(len(train_set), per_client * config.num_clients)
        selection = self.seeds.generator("selection").choice(len(train_set), size=needed, replace=False)
        pool = train_set.subset(selection)

        rng = self.seeds.generator("partition")
        if config.partition == "iid":
            parts = iid_partition(pool, config.num_clients, rng=rng)
        elif config.partition == "dirichlet":
            parts = dirichlet_partition(pool, config.num_clients, alpha=config.dirichlet_alpha, rng=rng)
        else:
            parts = shard_partition(pool, config.num_clients, shards_per_client=config.shards_per_client, rng=rng)

        for index, part in enumerate(parts):
            client_id = self._client_id(index)
            self.client_datasets[client_id] = pool.subset(part)

    def _client_id(self, index: int) -> str:
        return f"client_{index:03d}"

    # ----------------------------------------------------------------- setup

    def setup(self) -> "FLExperiment":
        """Construct the full deployment and establish the FL session."""
        if self._built:
            return self
        config = self.config
        self._build_datasets()

        self.clock = SimulationClock()
        self.event_log = EventLog()
        self.resources = ResourceAccountant()

        if config.heterogeneous_devices:
            self.fleet = DeviceFleet.heterogeneous(
                config.num_clients, prefix="client", seed=self.seeds.seed("fleet")
            )
        else:
            self.fleet = DeviceFleet.homogeneous(
                config.num_clients, tier=config.device_tier, prefix="client", seed=self.seeds.seed("fleet")
            )

        if config.device_memory_override_bytes is not None:
            for client_id in self.fleet.device_ids:
                profile = self.fleet.profile(client_id)
                self.fleet.scale_memory(
                    client_id, config.device_memory_override_bytes / profile.memory_bytes
                )

        self.network = NetworkModel(seed=self.seeds.seed("network"))
        for client_id in self.fleet.device_ids:
            profile = self.fleet.profile(client_id)
            self.network.set_link(client_id, profile.link_profile())
            self.resources.register_device(client_id, profile.memory_bytes)

        # One broker per region, bridged in a chain (paper §III.F).  The
        # coordinator and parameter server live on region 0's broker; clients
        # are spread round-robin across the regional brokers.
        self.brokers = [
            MQTTBroker(f"edge-broker-{region}", network=self.network, clock=self.clock)
            for region in range(config.num_regions)
        ]
        self.bridges = [
            BrokerBridge(self.brokers[i], self.brokers[i + 1])
            for i in range(len(self.brokers) - 1)
        ]
        self.broker = self.brokers[0]
        # Event-driven runtime: every broker hands its deliveries to a shared
        # time-ordered scheduler, which advances the simulation clock to each
        # record's ``deliver_at`` as the choreography drains.
        self.pump = MessagePump(clock=self.clock)
        self.scheduler = self.pump.scheduler
        for broker in self.brokers:
            self.scheduler.attach_broker(broker)

        coordinator_config = CoordinatorConfig(
            clustering=ClusteringConfig(
                policy=config.clustering_policy,
                aggregator_fraction=config.aggregator_fraction,
            ),
            auto_start_when_full=True,
            rebalance_every_round=config.rebalance_every_round,
        )
        self.coordinator = Coordinator(
            self.broker,
            config=coordinator_config,
            policy=get_policy(config.role_policy),
            event_log=self.event_log,
        )
        self.parameter_server = ParameterServer(self.broker, event_log=self.event_log)
        self.pump.register(self.coordinator.mqtt)
        self.pump.register(self.parameter_server.mqtt)

        compression = CompressionConfig(enabled=config.compression_enabled)
        for index in range(config.num_clients):
            client_id = self._client_id(index)
            client = SDFLMQClient(
                client_id,
                broker=self.brokers[index % len(self.brokers)],
                preferred_role="trainer_aggregator",
                aggregation=config.aggregation,
                compression=compression,
                chunk_bytes=config.chunk_bytes,
                stats_provider=(lambda cid=client_id: self.fleet.stats(cid)),
                resources=self.resources,
                pump=self.pump.run_until_idle,
            )
            self.clients.append(client)
            self.pump.register(client.mqtt)

            network = make_paper_mlp(
                input_dim=config.input_side * config.input_side,
                num_classes=config.num_classes,
                seed=config.seed,
            )
            model = ClassifierModel(network, name=config.model_name)
            self.client_models[client_id] = model
            self.client_optimizers[client_id] = Adam(
                network, lr=config.learning_rate, proximal_mu=config.proximal_mu
            )

        # Establish the session: the first client creates it, the rest join.
        creator = self.clients[0]
        creator.create_fl_session(
            session_id=config.session_id,
            fl_rounds=config.fl_rounds,
            model_name=config.model_name,
            session_capacity_min=config.num_clients,
            session_capacity_max=config.num_clients,
            aggregation=config.aggregation,
        )
        for client in self.clients[1:]:
            client.join_fl_session(
                session_id=config.session_id,
                fl_rounds=config.fl_rounds,
                model_name=config.model_name,
                num_samples=len(self.client_datasets[client.client_id]),
            )
        self.pump.run_until_idle()

        session = self.coordinator.session(config.session_id)
        if session.state != SessionState.RUNNING:
            raise RuntimeError(
                f"session failed to start: state={session.state.value!r}, "
                f"contributors={len(session.contributors)}/{config.num_clients}"
            )

        for client in self.clients:
            client.set_model(
                config.session_id,
                self.client_models[client.client_id],
                num_samples=len(self.client_datasets[client.client_id]),
            )

        self.delay_model = CriticalPathDelayModel(self.fleet, self.cost_model, self.network)
        self._built = True
        return self

    # ------------------------------------------------------------------- run

    def _train_client(self, client_id: str) -> float:
        """Run the local training phase for one client; returns the mean loss."""
        config = self.config
        model = self.client_models[client_id]
        dataset = self.client_datasets[client_id]
        if not config.train_for_real:
            # Delay-focused experiments skip the numerics but keep the exact
            # messaging behaviour; a tiny deterministic perturbation keeps the
            # parameter payloads changing round to round.
            for value in model.network.parameters().values():
                value += 1e-6
            return 0.0
        optimizer = self.client_optimizers[client_id]
        if config.proximal_mu > 0.0:
            # FedProx: anchor local training to the freshly synchronized global model.
            optimizer.set_proximal_reference(model.state_dict())
        loader = DataLoader(
            dataset,
            batch_size=config.batch_size,
            shuffle=True,
            rng=self.seeds.generator("loader", client_id),
        )
        losses = [model.train_epoch(loader, optimizer) for _ in range(config.local_epochs)]
        return float(np.mean(losses))

    def run_round(self, round_index: int) -> RoundResult:
        """Execute one complete FL round and return its metrics."""
        config = self.config
        session_id = config.session_id
        session = self.coordinator.session(session_id)
        topology = session.topology
        if topology is None:
            raise RuntimeError("session has no topology; was setup() called?")

        if config.memory_pressure > 0:
            self.fleet.drift(round_index, memory_pressure=config.memory_pressure)

        clock_before = self.clock.now()
        traffic_before = self._total_traffic_bytes()
        messages_before = self._total_messages_published()
        overflow_before = self.resources.overflow_count()
        roles_before = self.coordinator.role_messages_sent

        train_losses: Dict[str, float] = {}
        for client in self.clients:
            train_losses[client.client_id] = self._train_client(client.client_id)
            client.send_local(session_id)
        self.pump.run_until_idle()

        for client in self.clients:
            client.wait_global_update(session_id)

        # Evaluate the freshly synchronized global model on the held-out set.
        reference = self.client_models[self.clients[0].client_id]
        evaluation = reference.evaluate(self.test_set)

        payload_bytes = self.clients[0].models.record(session_id).payload_nbytes
        num_parameters = reference.num_parameters
        available_memory = {
            cid: self.fleet.stats(cid).available_memory_bytes for cid in self.fleet.device_ids
        }
        num_samples = {cid: len(ds) for cid, ds in self.client_datasets.items()}
        clients_informed = (
            len(topology.client_ids) if round_index == 0 else self._last_roles_changed
        )
        delay = self.delay_model.round_delay(
            topology=topology,
            round_index=round_index,
            num_samples=num_samples,
            payload_bytes=payload_bytes,
            num_parameters=num_parameters,
            epochs=config.local_epochs,
            available_memory=available_memory,
            clients_informed=clients_informed,
        )
        self.clock.advance(delay.total_s)

        mean_loss = float(np.mean(list(train_losses.values()))) if train_losses else 0.0
        for client in self.clients:
            client.report_stats(session_id, train_loss=train_losses.get(client.client_id, 0.0))
        self.pump.run_until_idle()
        self._last_roles_changed = self.coordinator.role_messages_sent - roles_before

        # The scheduler advanced the clock to every delivery's ``deliver_at``
        # while the round's messages drained; everything beyond the analytic
        # advance above is the observed messaging makespan.
        delay.messaging_s = max(0.0, self.clock.now() - clock_before - delay.total_s)

        return RoundResult(
            round_index=round_index,
            test_accuracy=float(evaluation["accuracy"]),
            test_loss=float(evaluation["loss"]),
            mean_train_loss=mean_loss,
            delay=delay,
            traffic_bytes=self._total_traffic_bytes() - traffic_before,
            messages_routed=self._total_messages_published() - messages_before,
            roles_changed=self._last_roles_changed,
            overflow_events=self.resources.overflow_count() - overflow_before,
            aggregator_ids=list(topology.aggregator_ids),
        )

    _last_roles_changed: int = 0

    def _total_traffic_bytes(self) -> int:
        """Payload bytes routed across all regional brokers."""
        return int(sum(b.traffic.total_payload_bytes for b in self.brokers))

    def _total_messages_published(self) -> int:
        """Messages published across all regional brokers (bridged copies included)."""
        return int(sum(b.stats.messages_published for b in self.brokers))

    def run(self) -> ExperimentResult:
        """Run the full experiment (setup + all rounds) and return the results."""
        self.setup()
        rounds: List[RoundResult] = []
        for round_index in range(self.config.fl_rounds):
            rounds.append(self.run_round(round_index))

        final_accuracy = rounds[-1].test_accuracy if rounds else 0.0
        return ExperimentResult(
            config=self.config,
            rounds=rounds,
            final_accuracy=final_accuracy,
            total_delay_s=float(sum(r.delay.total_s for r in rounds)),
            total_traffic_bytes=int(sum(r.traffic_bytes for r in rounds)),
            total_messages=int(sum(r.messages_routed for r in rounds)),
            peak_aggregator_memory_bytes=int(
                max(self.resources.high_water_by_device().values(), default=0)
            ),
            role_changes_total=int(sum(r.roles_changed for r in rounds)),
        )
