"""End-to-end FL experiment orchestration.

:class:`FLExperiment` wires a complete SDFLMQ deployment together — broker,
coordinator, parameter server, N clients with their local datasets and device
profiles — and runs the per-round choreography the paper describes:

1. every client trains locally for ``local_epochs`` epochs,
2. every client sends its model for aggregation (``send_local``),
3. the aggregation cascade runs through the hierarchy to the parameter server,
4. the global update synchronizer pushes the new global model to all clients,
5. clients report readiness + stats, the coordinator advances the round and
   re-runs the load balancer.

Alongside the learning metrics, the harness computes the simulated *total
processing delay* of every round with the critical-path model, which is the
quantity Fig. 8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.core.client import SDFLMQClient
from repro.core.clustering import ClusteringConfig
from repro.core.coordinator import Coordinator, CoordinatorConfig
from repro.core.parameter_server import ParameterServer
from repro.core.role_optimizers import get_policy
from repro.core.rounds import PhaseTimer, RoundLifecycle, RoundPhase
from repro.core.session import SessionState
from repro.core.topics import SDFLMQ_ROOT
from repro.ml.data import ArrayDataset, DataLoader, train_test_split
from repro.ml.datasets import SyntheticDigitsConfig, synthetic_digits
from repro.ml.models import ClassifierModel, make_paper_mlp
from repro.ml.optim import Adam
from repro.ml.partition import dirichlet_partition, iid_partition, shard_partition
from repro.mqtt.bridge import BrokerBridge
from repro.mqtt.broker import MQTTBroker
from repro.mqtt.network import NetworkModel
from repro.mqttfc.compression import CompressionConfig
from repro.runtime.delay import CriticalPathDelayModel, RoundDelayBreakdown
from repro.runtime.pump import MessagePump
from repro.runtime.scheduler import EventScheduler
from repro.sim.clock import SimulationClock
from repro.sim.costs import CostModel
from repro.sim.device import DeviceFleet
from repro.sim.events import EventLog
from repro.sim.resources import ResourceAccountant
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_in_range, require_positive

__all__ = ["ExperimentConfig", "RoundResult", "ExperimentResult", "FLExperiment"]


@dataclass
class ExperimentConfig:
    """Everything needed to reproduce one FL run.

    The defaults correspond to the paper's Fig. 7 setup: 5 clients, 1 % of the
    (synthetic) digit dataset each, a single-hidden-layer MLP, FedAvg, 5 local
    epochs, 10 FL rounds, 2-layer hierarchical clustering with 30 % of clients
    acting as aggregators.
    """

    name: str = "sdflmq"
    # Federation shape
    num_clients: int = 5
    fl_rounds: int = 10
    local_epochs: int = 5
    batch_size: int = 32
    learning_rate: float = 1e-3
    # Dataset
    dataset_samples: int = 6000
    test_fraction: float = 0.15
    input_side: int = 16
    num_classes: int = 10
    client_data_fraction: float = 0.01
    partition: str = "iid"
    dirichlet_alpha: float = 0.5
    shards_per_client: int = 2
    # Topology / coordination
    clustering_policy: str = "hierarchical"
    aggregator_fraction: float = 0.30
    aggregation: str = "fedavg"
    role_policy: str = "static"
    rebalance_every_round: bool = True
    proximal_mu: float = 0.0
    # Devices
    device_tier: str = "laptop"
    heterogeneous_devices: bool = False
    tier_mix: Optional[Dict[str, float]] = None
    memory_pressure: float = 0.0
    device_memory_override_bytes: Optional[int] = None
    # Transport
    compression_enabled: bool = True
    chunk_bytes: int = 256 * 1024
    num_regions: int = 1
    #: Update-compression codec for contributions on the wire ("none",
    #: "fp16", "int8", "topk[=d]", "delta", or composed e.g. "delta+int8").
    update_codec: str = "none"
    # Behaviour
    train_for_real: bool = True
    seed: int = 42
    session_id: str = "session_01"
    model_name: str = "mlp"
    # Scenario hooks.  ``initial_clients`` (default: all) is how many clients
    # connect and join the session during setup; the rest are provisioned
    # (dataset, model, optimizer) but stay offline until a scenario admits
    # them (flash-crowd joins).  ``round_deadline_s`` switches the round drain
    # from run-to-completion to time-driven checkpoints: uploads still in
    # flight at the deadline are cut off and their senders dropped from the
    # round, exactly like a straggler missing a synchronization barrier.
    initial_clients: Optional[int] = None
    round_deadline_s: Optional[float] = None
    record_delivery_trace: bool = False

    def __post_init__(self) -> None:
        require_positive(self.num_clients, "num_clients")
        require_positive(self.fl_rounds, "fl_rounds")
        require_positive(self.local_epochs, "local_epochs")
        require_positive(self.batch_size, "batch_size")
        require_positive(self.learning_rate, "learning_rate")
        require_positive(self.dataset_samples, "dataset_samples")
        require_in_range(self.test_fraction, "test_fraction", 0.0, 0.9, inclusive=False)
        require_in_range(self.client_data_fraction, "client_data_fraction", 0.0, 1.0, inclusive=False)
        if self.partition not in ("iid", "dirichlet", "shard"):
            raise ValueError(f"unknown partition scheme {self.partition!r}")
        if self.clustering_policy not in ("hierarchical", "central"):
            raise ValueError(f"unknown clustering policy {self.clustering_policy!r}")
        require_in_range(self.memory_pressure, "memory_pressure", 0.0, 1.0)
        require_positive(self.num_regions, "num_regions")
        from repro.mqttfc.codecs import parse_codec_spec

        parse_codec_spec(self.update_codec)  # raises CodecError on bad specs
        require_positive(self.proximal_mu, "proximal_mu", strict=False)
        if self.device_memory_override_bytes is not None:
            require_positive(self.device_memory_override_bytes, "device_memory_override_bytes")
        if self.tier_mix is not None:
            from repro.sim.device import DEVICE_TIERS

            unknown = set(self.tier_mix) - set(DEVICE_TIERS)
            if unknown:
                raise ValueError(f"unknown tiers in tier_mix: {sorted(unknown)}")
        if self.initial_clients is not None:
            require_positive(self.initial_clients, "initial_clients")
            if self.initial_clients > self.num_clients:
                raise ValueError(
                    f"initial_clients ({self.initial_clients}) cannot exceed "
                    f"num_clients ({self.num_clients})"
                )
        if self.round_deadline_s is not None:
            require_positive(self.round_deadline_s, "round_deadline_s")


@dataclass
class RoundResult:
    """Metrics for one completed FL round."""

    round_index: int
    test_accuracy: float
    test_loss: float
    mean_train_loss: float
    delay: RoundDelayBreakdown
    traffic_bytes: int
    messages_routed: int
    roles_changed: int
    overflow_events: int
    aggregator_ids: List[str] = field(default_factory=list)
    participants: int = 0
    stragglers_cut: int = 0
    #: Per-phase breakdown of the observed simulated time (derived from the
    #: round lifecycle's event timestamps): how long the round spent with
    #: roles being (re)arranged, contributions in flight, and the stored
    #: global settling.  The analytic critical-path advance is excluded, so
    #: these sit on the same footing as ``messaging_s``.
    planning_s: float = 0.0
    collecting_s: float = 0.0
    aggregating_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        """Flat dict row (used by the benchmark tables and grid reports).

        ``round_delay_s`` is the analytic critical-path delay while
        ``messaging_s`` is the observed event-scheduler makespan — exporting
        both here is what lets reports compare model against execution.  The
        ``planning_s``/``collecting_s``/``aggregating_s`` columns split the
        observed time by lifecycle phase, localizing *where* a degraded
        scenario loses it.
        """
        row = {
            "round": self.round_index,
            "test_accuracy": self.test_accuracy,
            "test_loss": self.test_loss,
            "mean_train_loss": self.mean_train_loss,
            "round_delay_s": self.delay.total_s,
            "messaging_s": self.delay.messaging_s,
            "planning_s": self.planning_s,
            "collecting_s": self.collecting_s,
            "aggregating_s": self.aggregating_s,
            "traffic_bytes": self.traffic_bytes,
            "messages_routed": self.messages_routed,
            "roles_changed": self.roles_changed,
            "overflow_events": self.overflow_events,
            "participants": self.participants,
            "stragglers_cut": self.stragglers_cut,
        }
        return row


@dataclass
class ExperimentResult:
    """Aggregate outcome of one FL experiment."""

    config: ExperimentConfig
    rounds: List[RoundResult]
    final_accuracy: float
    total_delay_s: float
    total_traffic_bytes: int
    total_messages: int
    peak_aggregator_memory_bytes: int
    role_changes_total: int

    @property
    def accuracies(self) -> List[float]:
        """Per-round test accuracies in order."""
        return [r.test_accuracy for r in self.rounds]

    @property
    def round_delays(self) -> List[float]:
        """Per-round simulated processing delays in seconds."""
        return [r.delay.total_s for r in self.rounds]

    def as_rows(self) -> List[Dict[str, float]]:
        """Row-per-round table representation."""
        return [r.as_dict() for r in self.rounds]


class FLExperiment:
    """Builds and runs one complete SDFLMQ federated-learning experiment."""

    def __init__(
        self,
        config: Optional[ExperimentConfig] = None,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        self.config = config or ExperimentConfig()
        self.seeds = SeedSequenceFactory(self.config.seed)
        self._built = False

        # Populated by setup()
        self.clock: SimulationClock
        self.broker: MQTTBroker
        self.fleet: DeviceFleet
        self.network: NetworkModel
        self.resources: ResourceAccountant
        self.event_log: EventLog
        self.coordinator: Coordinator
        self.parameter_server: ParameterServer
        self.pump: MessagePump
        self.scheduler: EventScheduler
        self.clients: List[SDFLMQClient] = []
        self.client_models: Dict[str, ClassifierModel] = {}
        self.client_datasets: Dict[str, ArrayDataset] = {}
        self.client_optimizers: Dict[str, Adam] = {}
        self.test_set: ArrayDataset
        self.delay_model: CriticalPathDelayModel
        self.cost_model: CostModel = cost_model or CostModel()
        #: The coordinator's round-lifecycle state machine for the session —
        #: the single home of phase, restart epoch, roster and deadline state.
        #: Populated by setup(); scenario fault plans subscribe to it for
        #: round-anchored windows.
        self.lifecycle: RoundLifecycle
        self._client_brokers: Dict[str, MQTTBroker] = {}
        #: client id → region ordinal (the shard cut used by ``--shards``).
        self.client_regions: Dict[str, int] = {}
        #: When set, local training is routed through this hook instead of
        #: running inline — the sharded scenario runner uses it to train each
        #: client on its owning shard only and install the shipped result
        #: everywhere else.  Signature: ``hook(client_id) -> mean loss``.
        self.train_hook: Optional[Callable[[str], float]] = None
        self._pending_midround_uploads: set = set()
        self.stragglers_cut_total = 0
        self.clients_admitted = 0
        self.midround_admissions = 0

    # -------------------------------------------------------------- datasets

    def _build_datasets(self) -> None:
        config = self.config
        dataset = synthetic_digits(
            SyntheticDigitsConfig(
                num_samples=config.dataset_samples,
                num_classes=config.num_classes,
                side=config.input_side,
                seed=self.seeds.seed("dataset"),
            )
        )
        train_set, test_set = train_test_split(
            dataset, test_fraction=config.test_fraction, rng=self.seeds.generator("split")
        )
        self.test_set = test_set

        per_client = max(1, int(round(len(train_set) * config.client_data_fraction)))
        needed = min(len(train_set), per_client * config.num_clients)
        selection = self.seeds.generator("selection").choice(len(train_set), size=needed, replace=False)
        pool = train_set.subset(selection)

        rng = self.seeds.generator("partition")
        if config.partition == "iid":
            parts = iid_partition(pool, config.num_clients, rng=rng)
        elif config.partition == "dirichlet":
            parts = dirichlet_partition(pool, config.num_clients, alpha=config.dirichlet_alpha, rng=rng)
        else:
            parts = shard_partition(pool, config.num_clients, shards_per_client=config.shards_per_client, rng=rng)

        for index, part in enumerate(parts):
            client_id = self._client_id(index)
            self.client_datasets[client_id] = pool.subset(part)

    def _client_id(self, index: int) -> str:
        return f"client_{index:03d}"

    # ----------------------------------------------------------------- setup

    def setup(self) -> "FLExperiment":
        """Construct the full deployment and establish the FL session."""
        if self._built:
            return self
        config = self.config
        self._build_datasets()

        self.clock = SimulationClock()
        self.event_log = EventLog()
        self.resources = ResourceAccountant()

        if config.tier_mix is not None:
            self.fleet = DeviceFleet.heterogeneous(
                config.num_clients,
                tier_mix=dict(config.tier_mix),
                prefix="client",
                seed=self.seeds.seed("fleet"),
            )
        elif config.heterogeneous_devices:
            self.fleet = DeviceFleet.heterogeneous(
                config.num_clients, prefix="client", seed=self.seeds.seed("fleet")
            )
        else:
            self.fleet = DeviceFleet.homogeneous(
                config.num_clients, tier=config.device_tier, prefix="client", seed=self.seeds.seed("fleet")
            )

        if config.device_memory_override_bytes is not None:
            for client_id in self.fleet.device_ids:
                profile = self.fleet.profile(client_id)
                self.fleet.scale_memory(
                    client_id, config.device_memory_override_bytes / profile.memory_bytes
                )

        self.network = NetworkModel(seed=self.seeds.seed("network"))
        for client_id in self.fleet.device_ids:
            profile = self.fleet.profile(client_id)
            self.network.set_link(client_id, profile.link_profile())
            self.resources.register_device(client_id, profile.memory_bytes)

        # One broker per region, bridged in a chain (paper §III.F).  The
        # coordinator and parameter server live on region 0's broker; clients
        # are spread round-robin across the regional brokers.
        self.brokers = [
            MQTTBroker(f"edge-broker-{region}", network=self.network, clock=self.clock)
            for region in range(config.num_regions)
        ]
        self.bridges = [
            BrokerBridge(self.brokers[i], self.brokers[i + 1])
            for i in range(len(self.brokers) - 1)
        ]
        self.broker = self.brokers[0]
        # Event-driven runtime: every broker hands its deliveries to a shared
        # time-ordered scheduler, which advances the simulation clock to each
        # record's ``deliver_at`` as the choreography drains.
        self.scheduler = EventScheduler(
            clock=self.clock, record_trace=config.record_delivery_trace
        )
        self.pump = MessagePump(scheduler=self.scheduler)
        for broker in self.brokers:
            self.scheduler.attach_broker(broker)

        coordinator_config = CoordinatorConfig(
            clustering=ClusteringConfig(
                policy=config.clustering_policy,
                aggregator_fraction=config.aggregator_fraction,
            ),
            auto_start_when_full=True,
            rebalance_every_round=config.rebalance_every_round,
        )
        self.coordinator = Coordinator(
            self.broker,
            config=coordinator_config,
            policy=get_policy(config.role_policy),
            event_log=self.event_log,
        )
        self.parameter_server = ParameterServer(self.broker, event_log=self.event_log)
        self.pump.register(self.coordinator.mqtt)
        self.pump.register(self.parameter_server.mqtt)

        compression = CompressionConfig(enabled=config.compression_enabled)
        initial = config.initial_clients or config.num_clients
        for index in range(config.num_clients):
            client_id = self._client_id(index)
            region = index % len(self.brokers)
            broker = self.brokers[region]
            self._client_brokers[client_id] = broker
            self.client_regions[client_id] = region
            # Region tags feed the canonical merged trace digest (the shard
            # determinism contract); a no-op unless tracing is on.
            self.scheduler.assign_trace_region(client_id, region)
            client = SDFLMQClient(
                client_id,
                # Latent clients (index >= initial) are provisioned but stay
                # offline until a scenario admits them via admit_client().
                broker=broker if index < initial else None,
                preferred_role="trainer_aggregator",
                aggregation=config.aggregation,
                compression=compression,
                chunk_bytes=config.chunk_bytes,
                stats_provider=(lambda cid=client_id: self.fleet.stats(cid)),
                resources=self.resources,
                pump=self.pump.run_until_idle,
                update_codec=config.update_codec,
            )
            client.on_role_assigned = self._client_role_assigned
            self.clients.append(client)
            self.pump.register(client.mqtt)

            network = make_paper_mlp(
                input_dim=config.input_side * config.input_side,
                num_classes=config.num_classes,
                seed=config.seed,
            )
            model = ClassifierModel(network, name=config.model_name)
            self.client_models[client_id] = model
            self.client_optimizers[client_id] = Adam(
                network, lr=config.learning_rate, proximal_mu=config.proximal_mu
            )

        # Establish the session: the first client creates it, the rest of the
        # initial cohort join.  The capacity window [initial, num_clients]
        # leaves room for latent clients to flash-crowd in mid-session.
        creator = self.clients[0]
        creator.create_fl_session(
            session_id=config.session_id,
            fl_rounds=config.fl_rounds,
            model_name=config.model_name,
            session_capacity_min=initial,
            session_capacity_max=config.num_clients,
            aggregation=config.aggregation,
        )
        for client in self.clients[1:initial]:
            client.join_fl_session(
                session_id=config.session_id,
                fl_rounds=config.fl_rounds,
                model_name=config.model_name,
                num_samples=len(self.client_datasets[client.client_id]),
            )
        self.pump.run_until_idle()

        session = self.coordinator.session(config.session_id)
        if session.state != SessionState.RUNNING:
            # With latent clients the session has quorum but is not full, so
            # auto-start never fires; start it explicitly.
            if session.state == SessionState.READY:
                self.coordinator.start_session(config.session_id)
                self.pump.run_until_idle()
            if session.state != SessionState.RUNNING:
                raise RuntimeError(
                    f"session failed to start: state={session.state.value!r}, "
                    f"contributors={len(session.contributors)}/{initial}"
                )

        for client in self.clients[:initial]:
            client.set_model(
                config.session_id,
                self.client_models[client.client_id],
                num_samples=len(self.client_datasets[client.client_id]),
            )

        self.lifecycle = session.lifecycle
        #: Per-phase round timing, fed by the lifecycle's timestamped events.
        #: Primed with the current state: the session is already COLLECTING
        #: round 0 by the time setup finishes.
        self.phase_timer = PhaseTimer()
        self.phase_timer.prime(
            self.lifecycle.phase, self.lifecycle.round_index, self.clock.now()
        )
        self.lifecycle.subscribe(self.phase_timer.on_event)
        self.delay_model = CriticalPathDelayModel(self.fleet, self.cost_model, self.network)
        self._built = True
        return self

    # ------------------------------------------------------------------- run

    def _train_client(self, client_id: str) -> float:
        """Local training for one client, via :attr:`train_hook` when set."""
        if self.train_hook is not None:
            return self.train_hook(client_id)
        return self._train_client_local(client_id)

    def _train_client_local(self, client_id: str) -> float:
        """Run the local training phase for one client; returns the mean loss."""
        config = self.config
        model = self.client_models[client_id]
        dataset = self.client_datasets[client_id]
        if not config.train_for_real:
            # Delay-focused experiments skip the numerics but keep the exact
            # messaging behaviour; a tiny deterministic perturbation keeps the
            # parameter payloads changing round to round.
            for value in model.network.parameters().values():
                value += 1e-6
            return 0.0
        optimizer = self.client_optimizers[client_id]
        if config.proximal_mu > 0.0:
            # FedProx: anchor local training to the freshly synchronized global model.
            optimizer.set_proximal_reference(model.state_dict())
        loader = DataLoader(
            dataset,
            batch_size=config.batch_size,
            shuffle=True,
            rng=self.seeds.generator("loader", client_id),
        )
        losses = [model.train_epoch(loader, optimizer) for _ in range(config.local_epochs)]
        return float(np.mean(losses))

    def run_round(self, round_index: int) -> RoundResult:
        """Execute one complete FL round and return its metrics.

        Clients that are disconnected (crashed by a fault plan, cut off at a
        previous deadline, or still latent) simply sit the round out; the
        round runs over the currently connected session participants.
        """
        config = self.config
        session_id = config.session_id
        session = self.coordinator.session(session_id)
        topology = session.topology
        if topology is None:
            raise RuntimeError("session has no topology; was setup() called?")

        if config.memory_pressure > 0:
            self.fleet.drift(round_index, memory_pressure=config.memory_pressure)

        clock_before = self.clock.now()
        traffic_before = self._total_traffic_bytes()
        messages_before = self._total_messages_published()
        overflow_before = self.resources.overflow_count()
        roles_before = self.coordinator.role_messages_sent
        cut_before = self.stragglers_cut_total

        # Fire timed actions the analytic clock advance jumped over (a fault
        # window opening between rounds must degrade *this* round's uploads).
        self.scheduler.run_until_time(self.clock.now())

        participants = self.participants()
        if not participants:
            raise RuntimeError(f"round {round_index}: no connected session participants")
        train_losses: Dict[str, float] = {}
        for client in participants:
            train_losses[client.client_id] = self._train_client(client.client_id)
            client.send_local(session_id)
        if config.round_deadline_s is not None:
            self._drain_round_deadline(session_id)
        else:
            self.pump.run_until_idle()

        # Re-filter: a participant may have crashed or been cut off while the
        # round's messages drained.
        for client in self.participants():
            client.wait_global_update(session_id)

        # Evaluate the freshly synchronized global model on the held-out set.
        survivors = self.participants()
        if not survivors:
            raise RuntimeError(f"round {round_index}: every participant dropped mid-round")
        reference_client = survivors[0]
        reference = self.client_models[reference_client.client_id]
        evaluation = reference.evaluate(self.test_set)

        payload_bytes = reference_client.models.record(session_id).payload_nbytes
        num_parameters = reference.num_parameters
        available_memory = {
            cid: self.fleet.stats(cid).available_memory_bytes for cid in self.fleet.device_ids
        }
        num_samples = {cid: len(ds) for cid, ds in self.client_datasets.items()}
        clients_informed = (
            len(topology.client_ids) if round_index == 0 else self._last_roles_changed
        )
        delay = self.delay_model.round_delay(
            topology=topology,
            round_index=round_index,
            num_samples=num_samples,
            payload_bytes=payload_bytes,
            num_parameters=num_parameters,
            epochs=config.local_epochs,
            available_memory=available_memory,
            clients_informed=clients_informed,
        )
        self.clock.advance(delay.total_s)
        # The analytic advance above is already reported as round_delay_s;
        # discount it from the open lifecycle phase so the per-phase columns
        # stay pure observed messaging/settling time.
        self.phase_timer.exclude(delay.total_s)

        mean_loss = float(np.mean(list(train_losses.values()))) if train_losses else 0.0
        for client in survivors:
            client.report_stats(session_id, train_loss=train_losses.get(client.client_id, 0.0))
        if config.round_deadline_s is not None:
            self._drain_round_boundary(session_id, round_index)
        else:
            self.pump.run_until_idle()
        self._last_roles_changed = self.coordinator.role_messages_sent - roles_before

        # The scheduler advanced the clock to every delivery's ``deliver_at``
        # while the round's messages drained; everything beyond the analytic
        # advance above is the observed messaging makespan.
        delay.messaging_s = max(0.0, self.clock.now() - clock_before - delay.total_s)

        phase_times = self.phase_timer.round_times(round_index)

        return RoundResult(
            round_index=round_index,
            test_accuracy=float(evaluation["accuracy"]),
            test_loss=float(evaluation["loss"]),
            mean_train_loss=mean_loss,
            delay=delay,
            traffic_bytes=self._total_traffic_bytes() - traffic_before,
            messages_routed=self._total_messages_published() - messages_before,
            roles_changed=self._last_roles_changed,
            overflow_events=self.resources.overflow_count() - overflow_before,
            aggregator_ids=list(topology.aggregator_ids),
            participants=len(participants),
            stragglers_cut=self.stragglers_cut_total - cut_before,
            planning_s=phase_times["planning_s"],
            collecting_s=phase_times["collecting_s"],
            aggregating_s=phase_times["aggregating_s"],
        )

    _last_roles_changed: int = 0

    # -------------------------------------------------- scenario churn hooks

    def client_by_id(self, client_id: str) -> SDFLMQClient:
        """Look up one of the experiment's clients by id."""
        for client in self.clients:
            if client.client_id == client_id:
                return client
        raise KeyError(f"unknown client id {client_id!r}")

    def participants(self) -> List[SDFLMQClient]:
        """Connected clients that are currently in the session."""
        session_id = self.config.session_id
        return [
            c for c in self.clients
            if c.mqtt.connected and session_id in c.sessions()
        ]

    def crash_client(self, client_id: str) -> None:
        """Ungracefully disconnect a client (its last-will fires).

        The coordinator notices through the broker, removes the client from
        the session, re-plans the topology and — mid-round — restarts the
        round for the survivors, exactly as in the churn examples.
        """
        self.client_by_id(client_id).disconnect(unexpected=True)

    def admit_client(self, client_id: str) -> None:
        """Connect a latent or previously crashed client and (re)join the session.

        Must be called at a round boundary (between :meth:`run_round` calls):
        the coordinator folds the newcomer into the topology immediately, so
        admitting mid-round would leave an aggregator waiting for an upload
        that never comes.
        """
        config = self.config
        client = self.client_by_id(client_id)
        if client.mqtt.connected:
            return
        client.connect(self._client_brokers[client_id])
        # Suppress the client's auto-pump during the join handshake: a full
        # run_until_idle would fast-forward through fault/churn actions
        # scheduled later on the timeline.
        pump_fn, client.pump = client.pump, None
        try:
            client.join_fl_session(
                session_id=config.session_id,
                fl_rounds=config.fl_rounds,
                model_name=config.model_name,
                num_samples=len(self.client_datasets[client_id]),
            )
        finally:
            client.pump = pump_fn
        if not client.models.has_model(config.session_id):
            client.set_model(
                config.session_id,
                self.client_models[client_id],
                num_samples=len(self.client_datasets[client_id]),
            )
        self._drain_control(config.session_id)
        self.clients_admitted += 1

    def admit_client_mid_round(self, client_id: str) -> None:
        """Connect and join a latent/crashed client *inside* a running round.

        Unlike :meth:`admit_client` this never drains the scheduler: the join
        handshake's messages flow through the ongoing round's event drain in
        strict time order.  The coordinator folds the newcomer into the
        topology on its ADMIT transition and re-issues the grown aggregators'
        expected-contribution counts; once the newcomer's ``set_role`` lands,
        :meth:`_client_role_assigned` triggers its first training + upload so
        the re-issued counts are actually met.
        """
        config = self.config
        session = self.coordinator.session(config.session_id)
        if not session.is_active:
            return  # the session completed/terminated before the admission fired
        client = self.client_by_id(client_id)
        if client.mqtt.connected:
            return
        client.connect(self._client_brokers[client_id])
        # Tell the coordinator this join is a mid-round arrival (out-of-band,
        # so the join request's wire size — and with it every modelled
        # delivery latency — stays identical to a boundary join's).
        self.coordinator.note_mid_round_join(client_id)
        # Suppress the auto-pump: draining here would fast-forward the very
        # round this admission is supposed to land inside.
        pump_fn, client.pump = client.pump, None
        try:
            client.join_fl_session(
                session_id=config.session_id,
                fl_rounds=config.fl_rounds,
                model_name=config.model_name,
                num_samples=len(self.client_datasets[client_id]),
            )
        finally:
            client.pump = pump_fn
        if not client.models.has_model(config.session_id):
            client.set_model(
                config.session_id,
                self.client_models[client_id],
                num_samples=len(self.client_datasets[client_id]),
            )
        self._pending_midround_uploads.add(client_id)
        self.clients_admitted += 1
        self.midround_admissions += 1

    def _client_role_assigned(self, client_id: str, session_id: str, assignment) -> None:
        """First-upload trigger for mid-round admissions (set_role hook).

        Fires for every applied ``set_role``; only clients flagged by
        :meth:`admit_client_mid_round` react.  The upload is skipped when the
        round has already moved past the point where a new contribution can
        be aggregated — the lifecycle left COLLECTING, the client already
        uploaded this round, or it already holds this round's global model —
        in which case the newcomer simply participates from the next round.
        """
        if session_id != self.config.session_id:
            return
        if client_id not in self._pending_midround_uploads:
            return
        self._pending_midround_uploads.discard(client_id)
        client = self.client_by_id(client_id)
        participation = client.participation(session_id)
        if self.lifecycle.phase is not RoundPhase.COLLECTING:
            return
        record = client.models.record(session_id)
        if record.last_global_round >= participation.current_round:
            return  # already synced for this round: nothing left to contribute
        if participation.rounds.awaiting_global(client.models.global_version(session_id)):
            return  # an upload for this round is already in flight
        # The coordinator restarted the round when it folded this joiner in;
        # the restart notice is still in flight behind the set_role, so sync
        # the epoch from the authoritative lifecycle — an upload stamped with
        # the pre-fold epoch would be discarded as a stale leftover.
        participation.rounds.observe_epoch(self.lifecycle.epoch)
        self._train_client(client_id)
        client.send_local(session_id)

    # ---------------------------------------------------- deadline-driven rounds

    def _round_complete(self, session_id: str) -> bool:
        """Whether every connected participant has this round's global model."""
        waiting = False
        for client in self.participants():
            if not client.models.has_model(session_id):
                continue
            participation = client.participation(session_id)
            if client.models.global_version(session_id) < participation.awaited_global_version:
                return False
            waiting = True
        return waiting

    def _drain_round_deadline(self, session_id: str) -> None:
        """Drive the round with ``run_until_time`` checkpoints.

        The round gets ``round_deadline_s`` of simulated time; uploads still
        in flight at the deadline are cancelled and their senders dropped
        from the session (the straggler cut-off), after which the survivors'
        restarted round drains to completion.  Timed fault/churn actions
        scheduled inside the window fire at their exact simulated times
        instead of being fast-forwarded.
        """
        config = self.config
        done = lambda: self._round_complete(session_id)  # noqa: E731
        deadline = self.lifecycle.arm_deadline(
            self.clock.now(), float(config.round_deadline_s or 0.0)
        )
        self.scheduler.run_until_time(deadline, stop_when=done)
        if done():
            return
        self.lifecycle.deadline_expired()
        self._cutoff_stragglers(session_id)
        self.scheduler.run_until_quiet()
        if not done():
            raise RuntimeError(
                "round did not complete after the deadline straggler cut-off"
            )

    def _cutoff_stragglers(self, session_id: str) -> List[str]:
        """Cut off clients whose uploads are still in flight at the deadline."""
        prefix = f"{SDFLMQ_ROOT}/session/{session_id}/aggregator/"
        in_flight = sorted(
            {
                record.message.sender_id
                for record in self.scheduler.pending_deliveries()
                if record.message.sender_id and record.message.topic.startswith(prefix)
            }
        )
        cut: List[str] = []
        for client_id in in_flight:
            try:
                client = self.client_by_id(client_id)
            except KeyError:
                continue  # an infrastructure sender, not one of ours
            if not client.mqtt.connected:
                continue
            # The late upload vanishes from the network, then the sender is
            # dropped: its last-will triggers the coordinator's re-plan and
            # round restart for the survivors.
            self.scheduler.cancel_deliveries(
                lambda record, cid=client_id: (
                    record.message.sender_id == cid
                    and record.message.topic.startswith(prefix)
                )
            )
            client.disconnect(unexpected=True)
            cut.append(client_id)
        self.stragglers_cut_total += len(cut)
        return cut

    def _drain_round_boundary(self, session_id: str, round_index: int) -> None:
        """Settle the post-round stats/rebalance traffic without fast-forwarding."""
        session = self.coordinator.session(session_id)
        self.scheduler.run_until_quiet()
        if session.round_index <= round_index and session.is_active:
            raise RuntimeError(f"round {round_index} failed to advance after stats reports")

    def _drain_control(self, session_id: str) -> None:
        """Drain control-plane handshakes (join acks, role sets)."""
        if self.config.round_deadline_s is None:
            self.pump.run_until_idle()
        else:
            self.scheduler.run_until_quiet()

    def _total_traffic_bytes(self) -> int:
        """Payload bytes routed across all regional brokers."""
        return int(sum(b.traffic.total_payload_bytes for b in self.brokers))

    def _total_messages_published(self) -> int:
        """Messages published across all regional brokers (bridged copies included)."""
        return int(sum(b.stats.messages_published for b in self.brokers))

    def run(self) -> ExperimentResult:
        """Run the full experiment (setup + all rounds) and return the results."""
        self.setup()
        rounds: List[RoundResult] = []
        for round_index in range(self.config.fl_rounds):
            rounds.append(self.run_round(round_index))

        final_accuracy = rounds[-1].test_accuracy if rounds else 0.0
        return ExperimentResult(
            config=self.config,
            rounds=rounds,
            final_accuracy=final_accuracy,
            total_delay_s=float(sum(r.delay.total_s for r in rounds)),
            total_traffic_bytes=int(sum(r.traffic_bytes for r in rounds)),
            total_messages=int(sum(r.messages_routed for r in rounds)),
            peak_aggregator_memory_bytes=int(
                max(self.resources.high_water_by_device().values(), default=0)
            ),
            role_changes_total=int(sum(r.roles_changed for r in rounds)),
        )
