"""Deterministic experiment runtime.

The runtime drives a complete SDFLMQ deployment inside one process:

* :class:`EventScheduler` — time-ordered discrete-event kernel draining
  deliveries from a heap keyed by ``(deliver_at, sequence)`` while advancing
  the simulation clock;
* :class:`MessagePump` — API-compatible facade over the scheduler so the
  publish/subscribe choreography progresses deterministically;
* :class:`CriticalPathDelayModel` — converts one round's topology, device
  fleet and payload sizes into the simulated *total processing delay* the
  paper reports (Fig. 8), by walking the aggregation tree's critical path;
* :class:`FLExperiment` — end-to-end orchestration of a federated learning
  run (dataset partitioning, broker + coordinator + parameter server + client
  construction, per-round training/upload/aggregation/global-update cycle,
  metric and delay collection).
"""

from repro.runtime.scheduler import EventScheduler
from repro.runtime.pump import MessagePump
from repro.runtime.delay import CriticalPathDelayModel, RoundDelayBreakdown
from repro.runtime.experiment import (
    ExperimentConfig,
    FLExperiment,
    ExperimentResult,
    RoundResult,
)

__all__ = [
    "EventScheduler",
    "MessagePump",
    "CriticalPathDelayModel",
    "RoundDelayBreakdown",
    "ExperimentConfig",
    "FLExperiment",
    "ExperimentResult",
    "RoundResult",
]
