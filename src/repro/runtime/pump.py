"""Deterministic message pump — a facade over the event-driven scheduler.

Historically the pump swept all registered MQTT clients in round-robin
registration order.  It is now a thin, API-compatible facade over
:class:`~repro.runtime.scheduler.EventScheduler`: every sweep pulls the
pending deliveries into a heap keyed by ``(deliver_at, sequence)`` and
dispatches them in simulated-time order, so an entire multi-client
choreography (session creation → clustering → uploads → hierarchical
aggregation → global update) still completes deterministically from a single
``pump.run_until_idle()`` call — but now in the order the network model says
the messages actually arrive.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.mqtt.client import MQTTClient
from repro.runtime.scheduler import EventScheduler

__all__ = ["MessagePump"]


class MessagePump:
    """Time-ordered pump over a set of MQTT clients.

    Parameters
    ----------
    clients:
        Initial clients to register.
    max_sweeps:
        Bound on the number of sweeps before ``run_until_idle`` declares a
        message loop.
    clock:
        Optional simulation clock, advanced to each delivery's ``deliver_at``
        as messages are dispatched.
    scheduler:
        Optional pre-built :class:`EventScheduler` to drive; by default the
        pump owns a private one.
    """

    def __init__(
        self,
        clients: Optional[Iterable[MQTTClient]] = None,
        max_sweeps: Optional[int] = None,
        clock: Optional[object] = None,
        scheduler: Optional[EventScheduler] = None,
    ) -> None:
        if scheduler is None:
            scheduler = EventScheduler(
                clients, clock=clock, max_sweeps=100_000 if max_sweeps is None else max_sweeps
            )
        else:
            # A pre-built scheduler keeps its own configuration unless the
            # caller explicitly overrides it here.
            if max_sweeps is not None:
                scheduler.max_sweeps = int(max_sweeps)
            if clock is not None:
                scheduler.clock = clock
            for client in clients or ():
                scheduler.register(client)
        self.scheduler = scheduler

    @property
    def max_sweeps(self) -> int:
        """Sweep bound used by :meth:`run_until_idle` / :meth:`run_until`."""
        return self.scheduler.max_sweeps

    @max_sweeps.setter
    def max_sweeps(self, value: int) -> None:
        self.scheduler.max_sweeps = int(value)

    @property
    def total_messages(self) -> int:
        """Messages dispatched to callbacks since construction."""
        return self.scheduler.messages_processed

    @property
    def total_sweeps(self) -> int:
        """Sweeps executed since construction."""
        return self.scheduler.sweeps

    def register(self, client: MQTTClient) -> None:
        """Add a client to the pump set (idempotent)."""
        self.scheduler.register(client)

    def unregister(self, client: MQTTClient) -> None:
        """Remove a client from the pump set."""
        self.scheduler.unregister(client)

    @property
    def clients(self) -> List[MQTTClient]:
        """The registered clients, in pump order."""
        return self.scheduler.clients

    def sweep(self) -> int:
        """Process the currently pending deliveries once; returns messages handled."""
        return self.scheduler.sweep()

    def run_until_idle(self) -> int:
        """Sweep until no client has pending messages; returns total handled.

        Raises ``RuntimeError`` if the system does not quiesce within
        ``max_sweeps`` sweeps (which would indicate a message loop).
        """
        return self.scheduler.run_until_idle()

    def run_until(self, predicate: Callable[[], bool], max_sweeps: Optional[int] = None) -> bool:
        """Sweep until ``predicate()`` holds or the system quiesces.

        Returns True if the predicate was satisfied.
        """
        return self.scheduler.run_until(predicate, max_sweeps)

    def __call__(self) -> int:
        """Alias for :meth:`run_until_idle` so the pump can be passed as a callable."""
        return self.run_until_idle()
