"""Deterministic message pump.

With the in-process broker, published messages sit in each subscriber's inbox
until that subscriber's ``loop()`` runs.  The pump sweeps all registered MQTT
clients in a fixed order until no client has pending messages, which makes an
entire multi-client choreography (session creation → clustering → uploads →
hierarchical aggregation → global update) complete deterministically from a
single ``pump.run_until_idle()`` call.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from repro.mqtt.client import MQTTClient

__all__ = ["MessagePump"]


class MessagePump:
    """Round-robin pump over a set of MQTT clients."""

    def __init__(self, clients: Optional[Iterable[MQTTClient]] = None, max_sweeps: int = 100_000) -> None:
        self._clients: List[MQTTClient] = list(clients) if clients else []
        self.max_sweeps = int(max_sweeps)
        self.total_messages = 0
        self.total_sweeps = 0

    def register(self, client: MQTTClient) -> None:
        """Add a client to the pump set (idempotent)."""
        if client not in self._clients:
            self._clients.append(client)

    def unregister(self, client: MQTTClient) -> None:
        """Remove a client from the pump set."""
        if client in self._clients:
            self._clients.remove(client)

    @property
    def clients(self) -> List[MQTTClient]:
        """The registered clients, in pump order."""
        return list(self._clients)

    def sweep(self) -> int:
        """Process every client's inbox once; returns messages handled."""
        processed = 0
        for client in self._clients:
            processed += client.loop()
        self.total_sweeps += 1
        self.total_messages += processed
        return processed

    def run_until_idle(self) -> int:
        """Sweep until no client has pending messages; returns total handled.

        Raises ``RuntimeError`` if the system does not quiesce within
        ``max_sweeps`` sweeps (which would indicate a message loop).
        """
        total = 0
        for _ in range(self.max_sweeps):
            processed = self.sweep()
            total += processed
            if processed == 0:
                return total
        raise RuntimeError(f"message pump did not quiesce within {self.max_sweeps} sweeps")

    def run_until(self, predicate: Callable[[], bool], max_sweeps: Optional[int] = None) -> bool:
        """Sweep until ``predicate()`` holds or the system quiesces.

        Returns True if the predicate was satisfied.
        """
        limit = max_sweeps if max_sweeps is not None else self.max_sweeps
        if predicate():
            return True
        for _ in range(limit):
            processed = self.sweep()
            if predicate():
                return True
            if processed == 0:
                return predicate()
        return predicate()

    def __call__(self) -> int:
        """Alias for :meth:`run_until_idle` so the pump can be passed as a callable."""
        return self.run_until_idle()
