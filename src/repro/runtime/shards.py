"""Process-parallel region shards over the event kernel.

PR 9's columnar kernel made one event loop fast; this module makes *N* of
them run at once.  The fleet is partitioned by **region** — the natural cut
of the bridged-multi-region topology, where each region already owns its own
:class:`~repro.mqtt.broker.MQTTBroker` — and each shard is a worker process
advancing its own :class:`~repro.runtime.scheduler.EventScheduler` heap over
its owned regions' brokers.

Barrier protocol
----------------
Workers advance in lockstep over fixed-width simulated-time windows.  At the
end of every window each worker ships the cross-region messages its
:class:`ShardBridge` captured (serialized columnar over the pipe with the
zero-copy :func:`repro.mqttfc.serialization.encode_payload` wire format) to
the parent, which sorts the union canonically on
``(dst_region, timestamp, origin_broker, message_id)`` and relays each
shard's inbound slice.  Workers inject the slice via
``broker.publish(..., _from_bridge=True)`` — the same seam
:class:`~repro.mqtt.bridge.BrokerBridge` uses — before the next window
starts.  Because capture happens even when source and destination regions
live in the *same* worker, the per-region event streams are identical for
every shard layout, including the in-process :func:`run_unsharded` host.

Determinism contract
--------------------
With tracing on, every shard tags delivery-trace entries with the receiving
region (:meth:`EventScheduler.assign_trace_region`).  The **canonical global
digest** is the SHA-256 over trace lines sorted on
``(deliver_at, region, sequence)`` — a total order, since sequences are
unique per region broker — and each shard's digest is the same sort over its
owned-region subset.  The global digest is byte-identical for any shard
count, shards=1 included, versus the unsharded kernel.

Liveness: the parent polls worker pipes with a deadline; a worker that dies
(hard exit) or raises (it ships its traceback as an ``error`` frame) turns
into a clean :class:`ShardError` instead of a hung barrier.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing as mp
import os
import time
import traceback
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mqtt.broker import MQTTBroker
from repro.mqtt.client import MQTTClient
from repro.mqtt.messages import MQTTMessage, QoS
from repro.mqtt.network import NetworkModel
from repro.mqttfc.serialization import decode_payload, encode_payload
from repro.runtime.scheduler import EventScheduler
from repro.sim.clock import SimulationClock

__all__ = [
    "ShardError",
    "ShardRunResult",
    "ShardWorkload",
    "canonical_trace_digest",
    "plan_regions",
    "run_sharded",
    "run_unsharded",
]

#: (due, region, sequence, line) — the scheduler's structured trace entry.
TraceEntry = Tuple[float, int, int, bytes]

#: (dst_region, timestamp, origin_broker, message_id, topic, sender, qos,
#: retain, payload) — one captured cross-region message on the wire.  The
#: first four fields are the canonical injection sort key.
Wire = Tuple[float, int, str, int, str, str, int, bool, bytes]


class ShardError(RuntimeError):
    """A shard worker died, raised, or missed a barrier deadline."""


def canonical_trace_digest(entries: Iterable[TraceEntry]) -> str:
    """SHA-256 over trace lines sorted on ``(deliver_at, region, sequence)``.

    The sort key is a total order over deliveries (sequences are unique per
    region broker), so the digest is invariant to how regions were packed
    into shards — per-shard digests are the same sort over a region subset.
    """
    digest = hashlib.sha256()
    for _due, _region, _sequence, line in sorted(
        entries, key=lambda entry: (entry[0], entry[1], entry[2])
    ):
        digest.update(line)
    return digest.hexdigest()


def plan_regions(regions: int, shards: int) -> List[List[int]]:
    """Round-robin region → shard assignment; shards clamp to the region count."""
    shards = max(1, min(int(shards), int(regions)))
    plan: List[List[int]] = [[] for _ in range(shards)]
    for region in range(int(regions)):
        plan[region % shards].append(region)
    return plan


@dataclasses.dataclass(frozen=True)
class ShardWorkload:
    """A synthetic regional fan-out fleet (the sharded bench / test shape).

    Every region hosts ``clients_per_region`` subscribers on
    ``region/<r>/cmd`` plus a commander that publishes
    ``broadcasts_per_window`` local broadcasts and ``cross_per_window``
    messages to the next region's topic per window — the cross traffic is
    what exercises the bridge capture + barrier exchange.  The ``crash_*``
    knobs inject a worker failure for the barrier-liveness tests.
    """

    regions: int = 4
    clients_per_region: int = 100
    windows: int = 4
    window_s: float = 10.0
    broadcasts_per_window: int = 2
    cross_per_window: int = 1
    payload: bytes = b"sync"
    network_seed: int = 3
    crash_window: int = -1
    crash_region: int = -1
    crash_hard: bool = False


@dataclasses.dataclass(frozen=True)
class ShardRunResult:
    """Merged outcome of one (un)sharded run."""

    shards: int
    regions: int
    deliveries: int
    events: int
    received: int
    bridged: int
    elapsed_s: float
    global_digest: Optional[str]
    shard_digests: Tuple[Optional[str], ...]

    @property
    def deliveries_per_s(self) -> float:
        return self.deliveries / self.elapsed_s if self.elapsed_s > 0 else 0.0


def _region_topic(region: int) -> str:
    return f"region/{region}/cmd"


def _topic_region(topic: str) -> Optional[int]:
    parts = topic.split("/", 2)
    if len(parts) == 3 and parts[0] == "region" and parts[1].isdigit():
        return int(parts[1])
    return None


class ShardBridge:
    """Captures locally-originated cross-region publishes into the outbox.

    Duck-types :meth:`BrokerBridge.on_local_publish` and attaches through the
    same ``broker.attach_bridge`` seam, so brokers need no sharding-specific
    code.  Messages injected from other shards arrive with a foreign
    ``origin_broker`` and are not re-captured.
    """

    def __init__(self, host: "ShardHost") -> None:
        self.host = host
        self.captured = 0

    def on_local_publish(self, source: MQTTBroker, message: MQTTMessage) -> int:
        if message.origin_broker != source.name:
            return 0  # injected from another shard — already routed
        destination = _topic_region(message.topic)
        if destination is None or destination == self.host.region_of_broker[source.name]:
            return 0
        self.host.outbox.append(
            (
                float(message.timestamp),
                destination,
                message.origin_broker,
                int(message.message_id),
                message.topic,
                message.sender_id or "",
                int(getattr(message.qos, "value", message.qos)),
                bool(message.retain),
                bytes(message.payload),
            )
        )
        self.captured += 1
        return 1


class ShardHost:
    """One worker's slice of the fleet: owned regions, one scheduler, one clock.

    The same class also runs the *unsharded* comparator (a single host owning
    every region), so sharded and unsharded executions share every line of
    event-loop code and differ only in how the outbox is exchanged.
    """

    def __init__(
        self,
        workload: ShardWorkload,
        owned_regions: Iterable[int],
        *,
        record_trace: bool = False,
    ) -> None:
        self.workload = workload
        self.owned = sorted(int(region) for region in owned_regions)
        self.clock = SimulationClock()
        self.scheduler = EventScheduler(clock=self.clock, record_trace=record_trace)
        self.outbox: List[Wire] = []
        self.brokers: Dict[int, MQTTBroker] = {}
        self.region_of_broker: Dict[str, int] = {}
        self.received = 0
        self.bridge = ShardBridge(self)
        for region in self.owned:
            broker = MQTTBroker(
                f"region-{region}",
                network=NetworkModel(seed=workload.network_seed + region),
                clock=self.clock,
            )
            self.scheduler.attach_broker(broker)
            broker.attach_bridge(self.bridge)
            self.brokers[region] = broker
            self.region_of_broker[broker.name] = region
            for index in range(workload.clients_per_region):
                client_id = f"r{region}_dev_{index:05d}"
                client = MQTTClient(client_id)
                client.connect(broker)
                client.subscribe(_region_topic(region), QoS.AT_LEAST_ONCE)
                client.on_message = self._on_message
                self.scheduler.register(client)
                self.scheduler.assign_trace_region(client_id, region)
            commander = MQTTClient(f"r{region}_commander")
            commander.connect(broker)
            self._schedule_commands(region, commander)

    def _on_message(self, _client: object, _message: object) -> None:
        self.received += 1

    def _schedule_commands(self, region: int, commander: MQTTClient) -> None:
        workload = self.workload
        local_topic = _region_topic(region)
        cross_topic = _region_topic((region + 1) % workload.regions)
        for window in range(workload.windows):
            base = window * workload.window_s
            for burst in range(workload.broadcasts_per_window):
                self.scheduler.call_at(
                    base + 1.0 + burst,
                    lambda c=commander, t=local_topic: c.publish(
                        t, workload.payload, qos=QoS.AT_LEAST_ONCE
                    ),
                )
            # Cross publishes land mid-window; their wires travel at the next
            # barrier, so the destination sees them one window later at their
            # original timestamps — identically for every shard layout.
            if workload.regions > 1:
                for burst in range(workload.cross_per_window):
                    self.scheduler.call_at(
                        base + 2.0 + burst,
                        lambda c=commander, t=cross_topic: c.publish(
                            t, workload.payload, qos=QoS.AT_LEAST_ONCE
                        ),
                    )

    def run_window(self, index: int) -> List[Wire]:
        """Advance to the window boundary; return (and clear) the outbox."""
        self.scheduler.run_until_time((index + 1) * self.workload.window_s)
        captured, self.outbox = self.outbox, []
        return captured

    def inject(self, wires: Sequence[Wire]) -> None:
        """Publish relayed cross-region messages (already canonically sorted)."""
        for timestamp, destination, origin, message_id, topic, sender, qos, retain, payload in wires:
            broker = self.brokers.get(destination)
            if broker is None:
                raise ShardError(f"wire routed to unowned region {destination}")
            broker.publish(
                MQTTMessage(
                    topic=topic,
                    payload=payload,
                    qos=QoS(qos),
                    retain=retain,
                    sender_id=sender or None,
                    origin_broker=origin,
                    timestamp=timestamp,
                    message_id=message_id,
                ),
                _from_bridge=True,
            )

    def finish(self) -> None:
        """Drain stragglers after the last barrier; the outbox must stay dry."""
        self.scheduler.run_until_idle()
        if self.outbox:
            raise ShardError(
                f"{len(self.outbox)} cross-region messages captured after the final barrier"
            )


# ------------------------------------------------------------------ the wire

_WIRE_SORT = slice(0, 4)  # (timestamp, dst_region, origin_broker, message_id)


def _encode_wires(wires: Sequence[Wire]) -> Dict[str, object]:
    if not wires:
        return {"n": 0}
    ts, dst, origin, mid, topic, sender, qos, retain, payload = zip(*wires)
    return {
        "n": len(wires),
        "ts": np.asarray(ts, dtype=np.float64),
        "dst": np.asarray(dst, dtype=np.int32),
        "mid": np.asarray(mid, dtype=np.int64),
        "qos": np.asarray(qos, dtype=np.int8),
        "retain": np.asarray(retain, dtype=np.uint8),
        "origin": list(origin),
        "topic": list(topic),
        "sender": list(sender),
        "plen": np.asarray([len(p) for p in payload], dtype=np.int32),
        "pblob": np.frombuffer(b"".join(payload), dtype=np.uint8),
    }


def _decode_wires(frame: Dict[str, object]) -> List[Wire]:
    count = int(frame["n"])  # type: ignore[arg-type]
    if not count:
        return []
    blob = np.asarray(frame["pblob"]).tobytes()
    offsets = np.concatenate(([0], np.cumsum(np.asarray(frame["plen"], dtype=np.int64))))
    wires: List[Wire] = []
    for i in range(count):
        wires.append(
            (
                float(frame["ts"][i]),  # type: ignore[index]
                int(frame["dst"][i]),  # type: ignore[index]
                str(frame["origin"][i]),  # type: ignore[index]
                int(frame["mid"][i]),  # type: ignore[index]
                str(frame["topic"][i]),  # type: ignore[index]
                str(frame["sender"][i]),  # type: ignore[index]
                int(frame["qos"][i]),  # type: ignore[index]
                bool(frame["retain"][i]),  # type: ignore[index]
                blob[offsets[i] : offsets[i + 1]],
            )
        )
    return wires


def _encode_entries(entries: Sequence[TraceEntry]) -> Dict[str, object]:
    if not entries:
        return {"n": 0}
    return {
        "n": len(entries),
        "due": np.asarray([e[0] for e in entries], dtype=np.float64),
        "region": np.asarray([e[1] for e in entries], dtype=np.int32),
        "seq": np.asarray([e[2] for e in entries], dtype=np.int64),
        "llen": np.asarray([len(e[3]) for e in entries], dtype=np.int32),
        "lblob": np.frombuffer(b"".join(e[3] for e in entries), dtype=np.uint8),
    }


def _decode_entries(frame: Dict[str, object]) -> List[TraceEntry]:
    count = int(frame["n"])  # type: ignore[arg-type]
    if not count:
        return []
    blob = np.asarray(frame["lblob"]).tobytes()
    offsets = np.concatenate(([0], np.cumsum(np.asarray(frame["llen"], dtype=np.int64))))
    return [
        (
            float(frame["due"][i]),  # type: ignore[index]
            int(frame["region"][i]),  # type: ignore[index]
            int(frame["seq"][i]),  # type: ignore[index]
            blob[offsets[i] : offsets[i + 1]],
        )
        for i in range(count)
    ]


def _send(conn, frame: Dict[str, object]) -> None:
    conn.send_bytes(encode_payload(frame))


def _recv_blocking(conn) -> Dict[str, object]:
    return decode_payload(conn.recv_bytes(), copy_arrays=False)


def _recv_checked(conn, worker, shard: int, timeout_s: float) -> Dict[str, object]:
    """Receive one frame, converting death / raise / stall into ShardError."""
    deadline = time.monotonic() + timeout_s
    while True:
        if conn.poll(0.05):
            try:
                frame = _recv_blocking(conn)
            except EOFError:
                worker.join(timeout=1)
                raise ShardError(
                    f"shard {shard} worker closed its pipe "
                    f"(exit code {worker.exitcode})"
                ) from None
            if frame.get("tag") == "error":
                raise ShardError(
                    f"shard {shard} worker failed:\n{frame.get('traceback', '')}"
                )
            return frame
        if not worker.is_alive():
            if conn.poll(0):
                continue  # the final frame raced the exit
            raise ShardError(
                f"shard {shard} worker died before the barrier "
                f"(exit code {worker.exitcode})"
            )
        if time.monotonic() >= deadline:
            raise ShardError(f"shard {shard} barrier timed out after {timeout_s:.0f}s")


# --------------------------------------------------------------- the workers


def _shard_worker(
    conn, workload: ShardWorkload, shard: int, owned: Tuple[int, ...], record_trace: bool
) -> None:
    try:
        host = ShardHost(workload, owned, record_trace=record_trace)
        _send(conn, {"tag": "ready", "shard": shard})
        _recv_blocking(conn)  # "go"
        for window in range(workload.windows):
            if window == workload.crash_window and workload.crash_region in host.brokers:
                if workload.crash_hard:
                    os._exit(3)
                raise RuntimeError(
                    f"injected crash in shard {shard} at window {window}"
                )
            _send(
                conn,
                {"tag": "window", "index": window, "wires": _encode_wires(host.run_window(window))},
            )
            host.inject(_decode_wires(_recv_blocking(conn)["wires"]))
        host.finish()
        entries = host.scheduler.trace_entries()
        _send(
            conn,
            {
                "tag": "done",
                "shard": shard,
                "deliveries": host.scheduler.messages_processed,
                "events": host.scheduler.events_processed,
                "received": host.received,
                "bridged": host.bridge.captured,
                "digest": canonical_trace_digest(entries) if record_trace else None,
                "entries": _encode_entries(entries) if record_trace else None,
            },
        )
    except Exception:
        try:
            _send(conn, {"tag": "error", "shard": shard, "traceback": traceback.format_exc()})
        except Exception:
            pass
    finally:
        conn.close()


def run_sharded(
    workload: ShardWorkload,
    shards: int,
    *,
    record_trace: bool = False,
    timeout_s: float = 120.0,
    start_method: Optional[str] = None,
) -> ShardRunResult:
    """Run *workload* across ``shards`` worker processes; merge the outcome.

    The wall clock (``elapsed_s``) covers the window loop and barrier
    exchanges only — worker construction sits behind a ``ready``/``go``
    handshake so fleet-building cost never pollutes the scaling metric.
    """
    plan = plan_regions(workload.regions, shards)
    shards = len(plan)
    owner = {region: index for index, owned in enumerate(plan) for region in owned}
    method = start_method or ("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    ctx = mp.get_context(method)
    workers: List[object] = []
    conns: List[object] = []
    try:
        for shard, owned in enumerate(plan):
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_shard_worker,
                args=(child_conn, workload, shard, tuple(owned), record_trace),
                daemon=True,
                name=f"shard-{shard}",
            )
            worker.start()
            child_conn.close()
            workers.append(worker)
            conns.append(parent_conn)
        for shard, conn in enumerate(conns):
            _recv_checked(conn, workers[shard], shard, timeout_s)  # "ready"
        for conn in conns:
            _send(conn, {"tag": "go"})
        start = time.perf_counter()
        for window in range(workload.windows):
            wires: List[Wire] = []
            for shard, conn in enumerate(conns):
                frame = _recv_checked(conn, workers[shard], shard, timeout_s)
                wires.extend(_decode_wires(frame["wires"]))
            wires.sort(key=lambda wire: wire[_WIRE_SORT])
            for shard, conn in enumerate(conns):
                slice_ = [wire for wire in wires if owner[wire[1]] == shard]
                _send(conn, {"tag": "inject", "wires": _encode_wires(slice_)})
        done = [
            _recv_checked(conn, workers[shard], shard, timeout_s)
            for shard, conn in enumerate(conns)
        ]
        elapsed = time.perf_counter() - start
        entries: List[TraceEntry] = []
        if record_trace:
            for frame in done:
                entries.extend(_decode_entries(frame["entries"]))
        return ShardRunResult(
            shards=shards,
            regions=workload.regions,
            deliveries=sum(int(frame["deliveries"]) for frame in done),
            events=sum(int(frame["events"]) for frame in done),
            received=sum(int(frame["received"]) for frame in done),
            bridged=sum(int(frame["bridged"]) for frame in done),
            elapsed_s=elapsed,
            global_digest=canonical_trace_digest(entries) if record_trace else None,
            shard_digests=tuple(frame["digest"] for frame in done),
        )
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
        for worker in workers:
            worker.join(timeout=5)


def run_unsharded(
    workload: ShardWorkload, *, record_trace: bool = False
) -> ShardRunResult:
    """In-process comparator: one host owns every region, loopback exchange."""
    host = ShardHost(workload, range(workload.regions), record_trace=record_trace)
    start = time.perf_counter()
    for window in range(workload.windows):
        wires = host.run_window(window)
        wires.sort(key=lambda wire: wire[_WIRE_SORT])
        host.inject(wires)
    host.finish()
    elapsed = time.perf_counter() - start
    entries = host.scheduler.trace_entries()
    digest = canonical_trace_digest(entries) if record_trace else None
    return ShardRunResult(
        shards=1,
        regions=workload.regions,
        deliveries=host.scheduler.messages_processed,
        events=host.scheduler.events_processed,
        received=host.received,
        bridged=host.bridge.captured,
        elapsed_s=elapsed,
        global_digest=digest,
        shard_digests=(digest,),
    )
