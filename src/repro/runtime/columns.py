"""Columnar (struct-of-arrays) storage for the event scheduler's hot state.

One slotted :class:`~repro.mqtt.messages.DeliveryRecord` object per delivery
was the dominant cost of the event kernel at fleet scale (ROADMAP item 1).
The scheduler now keeps every in-flight delivery in the preallocated numpy
columns below, indexed by a *slot* that travels through the heap as a plain
``int``; ``DeliveryRecord`` remains the public façade and is materialized
from the columns only on cold paths (``pending_deliveries``, cancel
predicates, offline requeue).

Two tables live here:

* :class:`DeliveryColumns` — per-slot delivery state.  Numeric fields
  (``deliver_at``, ``sequence``, the pre-clamp ``unclamped`` time, effective
  QoS, interned sender/receiver/topic ids) are numpy columns; object fields
  (message, delivery target, matched subscription filter) are plain Python
  lists.  Slots are recycled through a freelist, so steady-state traffic
  performs no per-delivery allocation.
* :class:`PairTails` — the per-connection FIFO clamp state: one growable
  float64 tail per ``(sender, receiver)`` pair (interned to a dense pair id),
  initialized to ``-inf`` so "no tail" needs no membership test and a whole
  fan-out's tails can be gathered/updated with one vectorized index.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.utils.soa import grow

__all__ = ["DeliveryColumns", "PairTails", "NO_UNCLAMPED"]

#: Column sentinel for "this delivery was never FIFO-clamped" — NaN never
#: compares equal to a real deliver_at, and ``math.isnan`` is the cheapest
#: "is there a remembered pre-clamp time?" test.
NO_UNCLAMPED = math.nan

_INITIAL_CAPACITY = 1024


class DeliveryColumns:
    """Growable struct-of-arrays table of in-flight deliveries, keyed by slot."""

    __slots__ = (
        "deliver_at",
        "unclamped",
        "sequence",
        "effective_qos",
        "sender",
        "receiver",
        "topic",
        "message",
        "target",
        "sub_filter",
        "_free",
        "_capacity",
        "live",
    )

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 16)
        self.deliver_at = np.empty(capacity, dtype=np.float64)
        self.unclamped = np.empty(capacity, dtype=np.float64)
        self.sequence = np.empty(capacity, dtype=np.int64)
        self.effective_qos = np.empty(capacity, dtype=np.int64)
        self.sender = np.empty(capacity, dtype=np.int64)
        self.receiver = np.empty(capacity, dtype=np.int64)
        self.topic = np.empty(capacity, dtype=np.int64)
        self.message: List[object] = [None] * capacity
        self.target: List[object] = [None] * capacity
        self.sub_filter: List[Optional[str]] = [None] * capacity
        # Freelist of recycled slots (LIFO keeps the hot slots cache-warm).
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._capacity = capacity
        self.live = 0

    @property
    def capacity(self) -> int:
        """Allocated slots (live + free)."""
        return self._capacity

    def _grow(self) -> None:
        old = self._capacity
        new = old * 2
        self.deliver_at = grow(self.deliver_at, new)
        self.unclamped = grow(self.unclamped, new)
        self.sequence = grow(self.sequence, new)
        self.effective_qos = grow(self.effective_qos, new)
        self.sender = grow(self.sender, new)
        self.receiver = grow(self.receiver, new)
        self.topic = grow(self.topic, new)
        pad = [None] * (new - old)
        self.message.extend(pad)
        self.target.extend(pad)
        self.sub_filter.extend(pad)
        self._free.extend(range(new - 1, old - 1, -1))
        self._capacity = new

    def alloc(
        self,
        message: object,
        target: object,
        sub_filter: Optional[str],
        deliver_at: float,
        unclamped: float,
        sequence: int,
        effective_qos: int,
        sender: int,
        receiver: int,
        topic: int,
    ) -> int:
        """Claim a slot and populate every column; returns the slot index."""
        free = self._free
        if not free:
            self._grow()
            free = self._free
        slot = free.pop()
        self.deliver_at[slot] = deliver_at
        self.unclamped[slot] = unclamped
        self.sequence[slot] = sequence
        self.effective_qos[slot] = effective_qos
        self.sender[slot] = sender
        self.receiver[slot] = receiver
        self.topic[slot] = topic
        self.message[slot] = message
        self.target[slot] = target
        self.sub_filter[slot] = sub_filter
        self.live += 1
        return slot

    def free(self, slot: int) -> None:
        """Release a slot back to the freelist, dropping its object refs."""
        self.message[slot] = None
        self.target[slot] = None
        self.sub_filter[slot] = None
        self._free.append(slot)
        self.live -= 1


class PairTails:
    """Dense FIFO-clamp tails: latest scheduled ``deliver_at`` per connection.

    ``(sender id, receiver id)`` int pairs are interned to a dense pair slot;
    the tail array starts at ``-inf`` (no in-flight predecessor), so the
    scalar clamp is a single compare and the vectorized fan-out clamp is a
    gather / ``maximum`` / scatter over one index array.
    """

    __slots__ = ("_index", "tails", "_capacity")

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        capacity = max(int(capacity), 16)
        self._index: Dict[Tuple[int, int], int] = {}
        self.tails = np.full(capacity, -math.inf, dtype=np.float64)
        self._capacity = capacity

    def slot(self, sender: int, receiver: int) -> int:
        """The pair slot for a connection, allocated on first use."""
        key = (sender, receiver)
        index = self._index.get(key)
        if index is None:
            index = len(self._index)
            self._index[key] = index
            if index >= self._capacity:
                self.tails = grow(self.tails, index + 1, fill=-math.inf)
                self._capacity = len(self.tails)
        return index

    def slots_for(self, sender: int, receivers: np.ndarray) -> np.ndarray:
        """Pair slots for one sender against many receivers (int64 array)."""
        slot = self.slot
        return np.array([slot(sender, int(r)) for r in receivers], dtype=np.int64)

    def clear_pair(self, sender: int, receiver: int) -> None:
        """Reset a connection's tail (its last in-flight delivery was cancelled)."""
        index = self._index.get((sender, receiver))
        if index is not None:
            self.tails[index] = -math.inf

    def __len__(self) -> int:
        return len(self._index)
