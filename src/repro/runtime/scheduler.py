"""Event-driven delivery scheduler over columnar (struct-of-arrays) hot state.

The seed runtime processed messages with a round-robin sweep over client
inboxes, which ignores the per-delivery ``deliver_at`` timestamps the broker
already computes from :class:`~repro.mqtt.network.NetworkModel`.  The
:class:`EventScheduler` replaces that with a classic discrete-event kernel: a
min-heap keyed by ``(deliver_at, sequence)`` (with a monotonic enqueue counter
as the final deterministic tiebreak) from which deliveries are drained in
simulated-time order, advancing the :class:`~repro.sim.clock.SimulationClock`
as it goes.

Since the columnar rewrite (ROADMAP item 1) the heap no longer holds one
record *object* per delivery.  In-flight state lives in two places:

* **Single deliveries** sit in :class:`~repro.runtime.columns.DeliveryColumns`
  — preallocated, growable numpy columns plus object lists — and travel
  through the heap as ``(deliver_at, sequence, enqueue, kind, slot)`` with a
  plain ``int`` slot.  Slots are recycled through a freelist, so steady-state
  traffic allocates nothing per delivery.
* **Broadcast fan-outs** arrive through :meth:`schedule_batch` as *one* heap
  entry carrying a :class:`_FanoutBatch` (shared message, per-member target /
  filter / receiver-id / QoS vectors).  The FIFO clamp for the whole fan-out
  is one vectorized gather / ``maximum`` / scatter against the
  :class:`~repro.runtime.columns.PairTails` table.  When a batch reaches the
  top of the heap it becomes a *cursor*: members are served one per
  :meth:`_pop_and_fire` call, each compared against the current heap top (and
  any other active cursor), so ``stop_when`` predicates, timed actions and
  same-instant traffic from other brokers interleave **exactly** as they did
  when every member was its own heap entry.  Identical
  ``(deliver_at, sequence, enqueue)`` total order is the determinism
  contract: every scenario and grid golden signature is byte-identical to the
  object-per-delivery kernel's.

Sender / receiver / topic strings are interned once on ingest
(:class:`~repro.utils.soa.StringTable`) and only rehydrated on cold paths —
:meth:`pending_deliveries`, cancel predicates and offline requeue materialize
ordinary :class:`~repro.mqtt.messages.DeliveryRecord` façades from the
columns on demand.

Two ingestion paths feed the heap:

* the *scheduling path*: a broker with a scheduler attached
  (:meth:`attach_broker`) hands every delivery straight to
  :meth:`schedule` (or a whole fan-out to :meth:`schedule_batch`) instead of
  the subscriber's inbox, and
* the *collection path*: records already sitting in registered clients'
  inboxes (delivered before the scheduler was attached, or by a broker
  without one) are pulled into the heap at the start of every sweep, so the
  scheduler is a strict superset of the round-robin pump's behaviour.

Besides deliveries the heap also holds *timed actions* (arbitrary callables
registered with :meth:`call_at`), which is what the churn scenarios in
:mod:`repro.sim.events` use to join/leave/reconnect clients at scheduled
simulation times.

:class:`~repro.runtime.pump.MessagePump` is a thin API-compatible facade over
this class, so all existing choreography code keeps working unchanged.
"""

from __future__ import annotations

import hashlib
import heapq
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.mqtt.client import MQTTClient
from repro.mqtt.messages import DeliveryRecord, QoS
from repro.runtime.columns import NO_UNCLAMPED, DeliveryColumns, PairTails
from repro.utils.soa import StringTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mqtt.broker import MQTTBroker

__all__ = ["EventScheduler"]

#: Heap payload kinds.  Actions sort before deliveries at the same instant via
#: their sentinel sequence of -1 (real delivery sequences start at 1).
_KIND_ACTION = 0
_KIND_DELIVERY = 1  # payload: int slot into DeliveryColumns
_KIND_BATCH = 2  # payload: _FanoutBatch (n same-deliver_at members)

#: Sequence sentinel used for timed actions so that churn events scheduled at
#: time *t* are applied before any delivery due at *t*.
_ACTION_SEQUENCE = -1


class _FanoutBatch:
    """One same-``deliver_at`` broadcast fan-out, stored struct-of-arrays.

    Members share the message and are keyed ``(due, seq0+i, enq0+i)``; the
    broker reserved ``n`` consecutive sequence numbers and the scheduler ``n``
    consecutive enqueue ids, so each member's heap key is exactly what it
    would have been as an individual entry.  ``pos`` is the cursor: how many
    members have already fired.
    """

    __slots__ = (
        "due",
        "seq0",
        "enq0",
        "n",
        "pos",
        "message",
        "targets",
        "filters",
        "receiver_idx",
        "sender_idx",
        "effective_qos",
        "unclamped",
        "broker",
        "session_epoch",
    )

    def __init__(
        self,
        due: float,
        seq0: int,
        enq0: int,
        n: int,
        message: object,
        targets: Sequence[object],
        filters: Sequence[str],
        receiver_idx: Sequence[int],
        sender_idx: int,
        effective_qos: Sequence[int],
        unclamped: Optional[np.ndarray],
        broker: "MQTTBroker",
        session_epoch: int,
    ) -> None:
        self.due = due
        self.seq0 = seq0
        self.enq0 = enq0
        self.n = n
        self.pos = 0
        self.message = message
        self.targets = targets
        self.filters = filters
        self.receiver_idx = receiver_idx
        self.sender_idx = sender_idx
        self.effective_qos = effective_qos
        self.unclamped = unclamped
        self.broker = broker
        self.session_epoch = session_epoch


class EventScheduler:
    """Deterministic time-ordered delivery scheduler.

    Parameters
    ----------
    clients:
        Initial set of MQTT clients whose inboxes the scheduler collects from.
    clock:
        Optional :class:`~repro.sim.clock.SimulationClock`; advanced to each
        event's due time as the heap drains (never rewound).
    max_sweeps:
        Safety bound for :meth:`run_until_idle` — a publish/reply loop that
        never quiesces raises instead of spinning forever.
    fifo_per_connection:
        Model per-connection in-order delivery (MQTT runs over TCP): each
        delivery's ``deliver_at`` is clamped to the previous in-flight
        delivery of the same (sender, receiver) pair, so a small message can
        never overtake a large earlier one on the same logical connection.
    record_trace:
        Maintain a running SHA-256 digest over every dispatched delivery
        (topic, sender, receiver, due time).  Two runs of the same scenario
        with the same seed must produce identical digests — the scenario
        determinism tests pin exactly that.  Off by default (costs a hash
        update per message).

    Example
    -------
    Attach a broker, let clients publish, then drain in time order:

    >>> from repro.mqtt.broker import MQTTBroker
    >>> from repro.mqtt.client import MQTTClient
    >>> from repro.sim.clock import SimulationClock
    >>> clock = SimulationClock()
    >>> broker = MQTTBroker("b", clock=clock)
    >>> scheduler = EventScheduler(clock=clock)
    >>> scheduler.attach_broker(broker)
    >>> sub = MQTTClient("sub"); _ = sub.connect(broker); _ = sub.subscribe("bus")
    >>> scheduler.register(sub)
    >>> pub = MQTTClient("pub"); _ = pub.connect(broker)
    >>> _ = pub.publish("bus", b"hello")
    >>> fired = []
    >>> _ = scheduler.call_at(10.0, lambda: fired.append("tick"))
    >>> scheduler.run_until_time(1.0)   # delivery drains, action stays queued
    1
    >>> fired
    []
    >>> scheduler.run_until_idle()      # fast-forwards to the action at t=10
    0
    >>> fired
    ['tick']
    """

    def __init__(
        self,
        clients: Optional[Iterable[MQTTClient]] = None,
        clock: Optional[object] = None,
        max_sweeps: int = 100_000,
        fifo_per_connection: bool = True,
        record_trace: bool = False,
    ) -> None:
        self._clients: List[MQTTClient] = list(clients) if clients else []
        self.clock = clock
        self.max_sweeps = int(max_sweeps)
        self.fifo_per_connection = bool(fifo_per_connection)

        # Heap entries: (due_time, sequence, enqueue_index, kind, payload).
        # The enqueue index is unique, so comparison never reaches the payload
        # and ties on (due_time, sequence) resolve in creation order.  A batch
        # entry carries the key of its *first* member; remaining members are
        # served through the cursor list below.
        self._heap: List[Tuple[float, int, int, int, object]] = []
        self._heap_deliveries = 0  # individual deliveries (batch members incl.)
        self._heap_actions = 0
        self._next_enqueue = 0
        #: Batches popped from the heap but not fully fired yet.  Almost
        #: always empty or length 1; >1 only when two same-instant fan-outs
        #: from different brokers interleave member-by-member.
        self._cursors: List[_FanoutBatch] = []
        self._brokers: List["MQTTBroker"] = []

        # Columnar hot state: interned ids, per-slot delivery columns, and the
        # per-(sender, receiver) FIFO tails.
        self._ids = StringTable()
        self._columns = DeliveryColumns()
        self._pairs = PairTails()

        self._trace = hashlib.sha256() if record_trace else None
        # Structured copy of every trace line, kept only while tracing:
        # ``(due, region_tag, sequence, line_bytes)``.  The region tag is the
        # receiver's shard-cut ordinal (``assign_trace_region``), 0 when
        # untagged; ``runtime/shards.py`` merges these into the canonical
        # global digest sorted on ``(due, region, sequence)``.
        self._trace_entries: List[Tuple[float, int, int, bytes]] = []
        self._trace_regions: Dict[int, int] = {}
        # Observability hooks (repro.obs).  Both default to detached so the
        # per-event cost is one ``is None`` check; ``tools/bench.py`` gates
        # the attached cost (``obs_overhead_ratio``).
        self.tracer: Optional[object] = None
        self._obs_observe: Optional[Callable[[float], None]] = None

        self.events_processed = 0
        self.messages_processed = 0
        self.actions_fired = 0
        self.sweeps = 0
        self.deliveries_dropped = 0
        self.deliveries_requeued = 0
        self.deliveries_cancelled = 0
        self.last_event_time = 0.0

    # ------------------------------------------------------------------ time

    def now(self) -> float:
        """Current simulated time (falls back to the last event's due time)."""
        if self.clock is not None:
            return float(self.clock.now())
        return self.last_event_time

    def next_event_time(self) -> Optional[float]:
        """Due time of the earliest pending event, or ``None`` when idle."""
        self._collect()
        return self._next_due()

    def _next_due(self) -> Optional[float]:
        """Earliest due time across the heap and any active batch cursors."""
        due = self._heap[0][0] if self._heap else None
        for batch in self._cursors:
            if due is None or batch.due < due:
                due = batch.due
        return due

    # ------------------------------------------------------------ membership

    def register(self, client: MQTTClient) -> None:
        """Add a client to the collection set (idempotent)."""
        if client not in self._clients:
            self._clients.append(client)

    def unregister(self, client: MQTTClient) -> None:
        """Remove a client from the collection set."""
        if client in self._clients:
            self._clients.remove(client)

    @property
    def clients(self) -> List[MQTTClient]:
        """The registered clients, in registration order."""
        return list(self._clients)

    def attach_broker(self, broker: "MQTTBroker") -> None:
        """Route ``broker``'s deliveries through this scheduler's heap."""
        broker.attach_scheduler(self)
        if broker not in self._brokers:
            self._brokers.append(broker)

    def detach_broker(self, broker: "MQTTBroker") -> None:
        """Restore ``broker``'s direct inbox delivery."""
        if broker in self._brokers:
            self._brokers.remove(broker)
        if broker.scheduler is self:
            broker.attach_scheduler(None)

    @property
    def brokers(self) -> List["MQTTBroker"]:
        """Brokers currently delivering through this scheduler."""
        return list(self._brokers)

    def attach_metrics(self, registry: Optional[object]) -> None:
        """Attach (or detach, with ``None``) a live delivery-latency histogram.

        The bound ``observe`` method is cached here so the per-delivery cost
        is one attribute load and one call; passing ``None`` restores the
        zero-instrumentation path.
        """
        if registry is None:
            self._obs_observe = None
            return
        self._obs_observe = registry.histogram(
            "scheduler_delivery_latency_s",
            buckets=(0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        ).observe

    # -------------------------------------------------------------- ingestion

    def schedule(self, target: object, record: DeliveryRecord) -> None:
        """Enqueue one delivery for ``target`` (the broker's scalar path).

        The record façade is decomposed into the columns here; ``record``
        itself is updated with any FIFO clamp applied (callers holding the
        object see the same ``deliver_at`` the heap uses) and then released —
        the scheduler keeps no reference to it.
        """
        message = record.message
        ids = self._ids
        sender_idx = ids.intern(message.sender_id)
        receiver_idx = ids.intern(record.subscriber_id)
        deliver_at = float(record.deliver_at)
        if self.fifo_per_connection:
            # Per-connection FIFO: a delivery never arrives before an earlier
            # one from the same sender to the same receiver, mirroring MQTT's
            # in-order guarantee over a single TCP connection.
            pair = self._pairs.slot(sender_idx, receiver_idx)
            tails = self._pairs.tails
            tail = tails[pair]
            if deliver_at < tail:
                # Remember the unclamped time: if the delivery ahead of us is
                # later cancelled, cancel_deliveries re-clamps from here.
                if record.unclamped_deliver_at is None:
                    record.unclamped_deliver_at = deliver_at
                deliver_at = float(tail)
                record.deliver_at = deliver_at
            tails[pair] = deliver_at
        unclamped = record.unclamped_deliver_at
        slot = self._columns.alloc(
            message,
            target,
            record.subscription_filter,
            deliver_at,
            NO_UNCLAMPED if unclamped is None else float(unclamped),
            int(record.sequence),
            int(record.effective_qos),
            sender_idx,
            receiver_idx,
            ids.intern(message.topic),
        )
        enqueue = self._next_enqueue
        self._next_enqueue = enqueue + 1
        heapq.heappush(
            self._heap,
            (deliver_at, int(record.sequence), enqueue, _KIND_DELIVERY, slot),
        )
        self._heap_deliveries += 1

    def intern_fanout(
        self, sender_id: Optional[str], receiver_ids: Sequence[str]
    ) -> Tuple[int, np.ndarray, np.ndarray, List[int]]:
        """Intern one fan-out's identities; called once per routing plan.

        Returns ``(sender_idx, receiver_idx_array, pair_slot_array,
        receiver_idx_list)`` — the broker caches these on the plan so the per
        publish cost of :meth:`schedule_batch` is pure vector math.
        """
        ids = self._ids
        sender_idx = ids.intern(sender_id)
        receiver_list = [ids.intern(r) for r in receiver_ids]
        receiver_arr = np.array(receiver_list, dtype=np.int64)
        pair_arr = self._pairs.slots_for(sender_idx, receiver_arr)
        return sender_idx, receiver_arr, pair_arr, receiver_list

    def schedule_batch(
        self,
        broker: "MQTTBroker",
        message: object,
        targets: Sequence[object],
        filters: Sequence[str],
        pair_ids: np.ndarray,
        receiver_idx: Sequence[int],
        effective_qos: Sequence[int],
        deliver_at: np.ndarray,
        seq0: int,
        sender_idx: int,
        session_epoch: int,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Vectorized ingest of one same-publish fan-out (the broker fast path).

        ``deliver_at`` holds the per-member network times; the per-connection
        FIFO clamp runs as one gather / ``maximum`` / scatter over
        ``pair_ids``.  When every member lands at the same instant (the
        broadcast common case) the whole fan-out becomes **one** heap entry;
        otherwise it degrades to per-member entries with identical keys.
        Returns ``(clamped deliver_at, unclamped-or-None)`` so the broker's
        lazy ``publish()`` result can report the same times the heap uses.
        """
        n = len(targets)
        if self.fifo_per_connection:
            tails = self._pairs.tails
            current = tails[pair_ids]
            clamped = current > deliver_at
            if clamped.any():
                effective = np.maximum(deliver_at, current)
                unclamped = np.where(clamped, deliver_at, NO_UNCLAMPED)
            else:
                effective = deliver_at
                unclamped = None
            tails[pair_ids] = effective
        else:
            effective = deliver_at
            unclamped = None
        enq0 = self._next_enqueue
        self._next_enqueue = enq0 + n
        due0 = float(effective[0])
        if effective[0] == effective[-1] and (effective == due0).all():
            batch = _FanoutBatch(
                due0,
                seq0,
                enq0,
                n,
                message,
                targets,
                filters,
                receiver_idx,
                sender_idx,
                effective_qos,
                unclamped,
                broker,
                session_epoch,
            )
            heapq.heappush(self._heap, (due0, seq0, enq0, _KIND_BATCH, batch))
        else:
            # Non-uniform due times (the FIFO clamp deferred a subset, or
            # heterogeneous links): one heap entry per member, preserving the
            # exact per-member (due, sequence, enqueue) keys.
            columns = self._columns
            topic_idx = self._ids.intern(message.topic)
            due_list = effective.tolist()
            heappush = heapq.heappush
            heap = self._heap
            for i in range(n):
                u = NO_UNCLAMPED if unclamped is None else float(unclamped[i])
                slot = columns.alloc(
                    message,
                    targets[i],
                    filters[i],
                    due_list[i],
                    u,
                    seq0 + i,
                    effective_qos[i],
                    sender_idx,
                    receiver_idx[i],
                    topic_idx,
                )
                heappush(heap, (due_list[i], seq0 + i, enq0 + i, _KIND_DELIVERY, slot))
        self._heap_deliveries += n
        return effective, unclamped

    def call_at(self, when: float, action: Callable[[], None]) -> float:
        """Schedule ``action()`` to fire at simulated time ``when``.

        Actions scheduled at the same instant as deliveries fire first, so a
        churn event (e.g. a client leaving) takes effect before the messages
        due at that time are dispatched.  Note that :meth:`run_until_idle`
        runs to completion and therefore fast-forwards through future
        actions; drive action-bearing timelines with :meth:`run_until_time`.
        Returns the scheduled time.
        """
        when = float(when)
        enqueue = self._next_enqueue
        self._next_enqueue = enqueue + 1
        heapq.heappush(
            self._heap, (when, _ACTION_SEQUENCE, enqueue, _KIND_ACTION, action)
        )
        self._heap_actions += 1
        return when

    def _collect(self) -> int:
        """Pull records sitting in registered clients' inboxes into the heap."""
        collected = 0
        for client in self._clients:
            for record in client.take_pending():
                self.schedule(client, record)
                collected += 1
        return collected

    @property
    def pending(self) -> int:
        """Events in the heap plus uncollected inbox records."""
        return (
            self._heap_deliveries
            + self._heap_actions
            + sum(c.pending_messages for c in self._clients)
        )

    @property
    def pending_delivery_count(self) -> int:
        """In-flight deliveries, O(1) (no record materialization)."""
        return self._heap_deliveries

    # --------------------------------------------------------- materialization

    def _materialize_slot(self, slot: int) -> DeliveryRecord:
        """Rebuild the public record façade for one columnar delivery slot."""
        columns = self._columns
        unclamped = columns.unclamped[slot]
        return DeliveryRecord(
            message=columns.message[slot],
            subscriber_id=self._ids.value(int(columns.receiver[slot])),
            subscription_filter=columns.sub_filter[slot],
            effective_qos=QoS(int(columns.effective_qos[slot])),
            deliver_at=float(columns.deliver_at[slot]),
            sequence=int(columns.sequence[slot]),
            unclamped_deliver_at=float(unclamped) if unclamped == unclamped else None,
        )

    def _materialize_batch_member(self, batch: _FanoutBatch, i: int) -> DeliveryRecord:
        """Rebuild the record façade for member ``i`` of a fan-out batch."""
        unclamped: Optional[float] = None
        if batch.unclamped is not None:
            value = batch.unclamped[i]
            if value == value:
                unclamped = float(value)
        return DeliveryRecord(
            message=batch.message,
            subscriber_id=self._ids.value(batch.receiver_idx[i]),
            subscription_filter=batch.filters[i],
            effective_qos=QoS(int(batch.effective_qos[i])),
            deliver_at=batch.due,
            sequence=batch.seq0 + i,
            unclamped_deliver_at=unclamped,
        )

    def pending_deliveries(self) -> List[DeliveryRecord]:
        """In-flight delivery records, ordered by ``(deliver_at, sequence)``.

        The scenario runner uses this to identify stragglers at a round
        deadline: any sender with an upload still in flight is late.  Records
        are materialized fresh from the columns on every call.
        """
        records: List[DeliveryRecord] = []
        for entry in self._heap:
            kind = entry[3]
            if kind == _KIND_DELIVERY:
                records.append(self._materialize_slot(entry[4]))  # type: ignore[arg-type]
            elif kind == _KIND_BATCH:
                batch = entry[4]
                records.extend(
                    self._materialize_batch_member(batch, i) for i in range(batch.n)  # type: ignore[arg-type]
                )
        for batch in self._cursors:
            records.extend(
                self._materialize_batch_member(batch, i)
                for i in range(batch.pos, batch.n)
            )
        records.sort(key=lambda r: (r.deliver_at, r.sequence))
        return records

    # ------------------------------------------------------------- cancellation

    def cancel_deliveries(self, predicate: Callable[[DeliveryRecord], bool]) -> int:
        """Remove in-flight deliveries matching ``predicate``; return the count.

        Timed actions are never cancelled.  This is how a deadline-driven
        round cuts off a straggler's late uploads: the messages vanish from
        the network rather than arriving after the round moved on.

        The sweep is two-phase: a read-only matching pass over the columns
        first, so the zero-match case (common at healthy round deadlines)
        returns without rebuilding or re-heapifying anything.
        """
        if self._heap_deliveries == 0:
            return 0
        heap = self._heap
        columns = self._columns
        doomed_singles: set = set()
        doomed_batches: Dict[int, List[int]] = {}
        cancelled_pairs: set = set()
        cancelled = 0
        for position, entry in enumerate(heap):
            kind = entry[3]
            if kind == _KIND_DELIVERY:
                slot = entry[4]
                if predicate(self._materialize_slot(slot)):  # type: ignore[arg-type]
                    doomed_singles.add(position)
                    cancelled_pairs.add(
                        (int(columns.sender[slot]), int(columns.receiver[slot]))  # type: ignore[index]
                    )
                    cancelled += 1
            elif kind == _KIND_BATCH:
                batch = entry[4]
                doomed = [
                    i
                    for i in range(batch.n)  # type: ignore[attr-defined]
                    if predicate(self._materialize_batch_member(batch, i))  # type: ignore[arg-type]
                ]
                if doomed:
                    doomed_batches[position] = doomed
                    for i in doomed:
                        cancelled_pairs.add((batch.sender_idx, batch.receiver_idx[i]))  # type: ignore[attr-defined]
                    cancelled += len(doomed)
        cursor_dooms: List[List[int]] = []
        for batch in self._cursors:
            doomed = [
                i
                for i in range(batch.pos, batch.n)
                if predicate(self._materialize_batch_member(batch, i))
            ]
            cursor_dooms.append(doomed)
            for i in doomed:
                cancelled_pairs.add((batch.sender_idx, batch.receiver_idx[i]))
            cancelled += len(doomed)
        if cancelled == 0:
            # Zero-match early-out: the heap order is untouched, so there is
            # nothing to rebuild, re-clamp or re-heapify.
            return 0

        self._heap_deliveries -= cancelled
        self.deliveries_cancelled += cancelled

        # Rebuild the heap: drop doomed singles, explode any batch that lost a
        # member *or* carries a survivor of a cancelled connection (its due
        # time may change under re-clamping, breaking batch uniformity).
        kept: List[Tuple[float, int, int, int, object]] = []
        for position, entry in enumerate(heap):
            kind = entry[3]
            if kind == _KIND_DELIVERY:
                if position in doomed_singles:
                    columns.free(entry[4])  # type: ignore[arg-type]
                else:
                    kept.append(entry)
            elif kind == _KIND_BATCH:
                batch = entry[4]
                doomed = doomed_batches.get(position)
                if doomed is None and not self._batch_touches_pairs(
                    batch, 0, cancelled_pairs  # type: ignore[arg-type]
                ):
                    kept.append(entry)
                else:
                    self._explode_batch(batch, 0, set(doomed or ()), kept)  # type: ignore[arg-type]
            else:
                kept.append(entry)
        for batch, doomed in zip(list(self._cursors), cursor_dooms):
            if doomed or self._batch_touches_pairs(batch, batch.pos, cancelled_pairs):
                self._cursors.remove(batch)
                self._explode_batch(batch, batch.pos, set(doomed), kept)

        # Release the affected connections' FIFO clamp slots: drop the
        # cancelled tails, then re-run the clamp for the surviving deliveries
        # of those pairs from their *unclamped* times — a survivor that was
        # queued behind a cancelled far-future upload (or the pair's
        # next-round traffic) must not stay pushed back by a message that no
        # longer exists.
        for sender_idx, receiver_idx in cancelled_pairs:
            self._pairs.clear_pair(sender_idx, receiver_idx)
        self._reclamp_pairs(kept, cancelled_pairs)
        heapq.heapify(kept)
        self._heap = kept
        return cancelled

    def _batch_touches_pairs(
        self, batch: _FanoutBatch, start: int, pairs: set
    ) -> bool:
        """Whether any remaining batch member belongs to a cancelled connection."""
        sender_idx = batch.sender_idx
        receiver_idx = batch.receiver_idx
        for i in range(start, batch.n):
            if (sender_idx, receiver_idx[i]) in pairs:
                return True
        return False

    def _explode_batch(
        self,
        batch: _FanoutBatch,
        start: int,
        doomed: set,
        out: List[Tuple[float, int, int, int, object]],
    ) -> None:
        """Convert a batch's surviving members into per-slot heap entries.

        Each survivor keeps its original ``(due, sequence, enqueue)`` key, so
        heap order is untouched; only the storage form changes.  Cold path —
        reached only through :meth:`cancel_deliveries`.
        """
        columns = self._columns
        topic_idx = self._ids.intern(batch.message.topic)
        unclamped = batch.unclamped
        for i in range(start, batch.n):
            if i in doomed:
                continue
            u = NO_UNCLAMPED if unclamped is None else float(unclamped[i])
            slot = columns.alloc(
                batch.message,
                batch.targets[i],
                batch.filters[i],
                batch.due,
                u,
                batch.seq0 + i,
                batch.effective_qos[i],
                batch.sender_idx,
                batch.receiver_idx[i],
                topic_idx,
            )
            out.append((batch.due, batch.seq0 + i, batch.enq0 + i, _KIND_DELIVERY, slot))

    def _reclamp_pairs(
        self,
        entries: List[Tuple[float, int, int, int, object]],
        pairs: set,
    ) -> None:
        """Re-run the per-connection FIFO clamp for ``pairs`` after a cancel.

        Surviving deliveries of each pair are re-clamped in enqueue order
        starting from each slot's original (pre-clamp) time, and the pair's
        tail is rebuilt from the result.  Entries of other pairs, kept
        batches (which by construction hold no affected member) and timed
        actions pass through untouched.  A slot whose re-clamped time lands
        in the simulated past simply fires at the next drain step — exactly
        how an inbox-collected record behaves.  Entries are updated in place;
        the caller re-heapifies.
        """
        columns = self._columns
        affected: Dict[Tuple[int, int], List[int]] = {}
        for index, entry in enumerate(entries):
            if entry[3] != _KIND_DELIVERY:
                continue
            slot = entry[4]
            pair = (int(columns.sender[slot]), int(columns.receiver[slot]))  # type: ignore[index]
            if pair in pairs:
                affected.setdefault(pair, []).append(index)
        if not affected:
            return
        fifo = self.fifo_per_connection
        tails = self._pairs
        for pair, indices in affected.items():
            tail: Optional[float] = None
            # Enqueue order (entry[2]) is scheduling order for the pair.
            for index in sorted(indices, key=lambda i: entries[i][2]):
                due, sequence, enqueue, kind, slot = entries[index]
                unclamped = columns.unclamped[slot]  # type: ignore[index]
                base = float(unclamped) if unclamped == unclamped else float(
                    columns.deliver_at[slot]  # type: ignore[index]
                )
                if fifo and tail is not None and base < tail:
                    new_due = tail
                else:
                    new_due = base
                    columns.unclamped[slot] = NO_UNCLAMPED  # no longer clamped
                columns.deliver_at[slot] = new_due
                tail = new_due
                if new_due != due:
                    entries[index] = (new_due, sequence, enqueue, kind, slot)
            if tail is not None:
                tails.tails[tails.slot(*pair)] = tail

    @property
    def trace_digest(self) -> Optional[str]:
        """Hex digest of the delivery trace (``None`` unless ``record_trace``)."""
        if self._trace is None:
            return None
        return self._trace.hexdigest()

    def assign_trace_region(self, receiver_id: str, region: int) -> None:
        """Tag *receiver_id*'s future trace entries with shard-cut *region*.

        The tag feeds the canonical merged digest (sorted on
        ``(deliver_at, region, sequence)``): per-shard digests are computed
        over a region subset of the same total order, so the global digest is
        byte-identical for any shard layout.  No-op unless ``record_trace``.
        """
        if self._trace is None:
            return
        self._trace_regions[self._ids.intern(receiver_id)] = int(region)

    def trace_entries(self) -> List[Tuple[float, int, int, bytes]]:
        """Structured ``(due, region, sequence, line)`` trace entries.

        Dispatch-ordered, exactly one entry per line hashed into
        :attr:`trace_digest`.  Empty unless ``record_trace`` was set.
        """
        return self._trace_entries

    # ------------------------------------------------------------- processing

    def _advance_clock(self, due: float) -> None:
        if due > self.last_event_time:
            self.last_event_time = due
        if self.clock is not None:
            self.clock.advance_to(due)

    def _pop_and_fire(self) -> bool:
        """Process the earliest event; returns True if a message callback ran.

        QoS-2 duplicates that the client suppresses (and timed actions) do not
        count as processed messages, mirroring ``MQTTClient.loop`` semantics.
        The earliest event is the minimum over the heap top and every active
        batch cursor's next member — the exact total order the
        object-per-delivery heap produced.
        """
        cursors = self._cursors
        if cursors:
            best = cursors[0]
            if len(cursors) > 1:
                best_key = (best.due, best.seq0 + best.pos, best.enq0 + best.pos)
                for batch in cursors[1:]:
                    key = (batch.due, batch.seq0 + batch.pos, batch.enq0 + batch.pos)
                    if key < best_key:
                        best, best_key = batch, key
            heap = self._heap
            if heap:
                top = heap[0]
                top_due = top[0]
                due = best.due
                if top_due < due:
                    return self._fire_entry(heapq.heappop(heap))
                if top_due == due:
                    seq = best.seq0 + best.pos
                    top_seq = top[1]
                    if top_seq < seq or (
                        top_seq == seq and top[2] < best.enq0 + best.pos
                    ):
                        return self._fire_entry(heapq.heappop(heap))
            return self._fire_batch_member(best)
        return self._fire_entry(heapq.heappop(self._heap))

    def _fire_entry(self, entry: Tuple[float, int, int, int, object]) -> bool:
        """Fire one popped heap entry (action, single delivery, or batch head)."""
        due, _sequence, _index, kind, payload = entry
        if kind == _KIND_BATCH:
            # The batch becomes a cursor; its members fire one per call so
            # stop_when / deadline checks interleave per delivery.
            self._cursors.append(payload)  # type: ignore[arg-type]
            return self._fire_batch_member(payload)  # type: ignore[arg-type]
        self._advance_clock(due)
        self.events_processed += 1
        if kind == _KIND_ACTION:
            payload()  # type: ignore[operator]
            self.actions_fired += 1
            self._heap_actions -= 1
            return False
        self._heap_deliveries -= 1
        columns = self._columns
        slot = payload
        target = columns.target[slot]  # type: ignore[index]
        message = columns.message[slot]  # type: ignore[index]
        # A client that disconnected after the broker routed this delivery but
        # before its deliver_at never receives it.  QoS>0 records destined for
        # a persistent session are requeued in the broker's offline queue (they
        # replay on reconnect); everything else is dropped, as on a real
        # broker where the TCP connection died mid-flight.
        # (try/except beats getattr-with-default on this per-delivery path:
        # the attributes exist on every real target, so the guard is free.)
        try:
            connected = target.connected
        except AttributeError:
            connected = True
        if connected is False:
            record = self._materialize_slot(slot)  # type: ignore[arg-type]
            columns.free(slot)  # type: ignore[arg-type]
            if self._requeue_offline(record):
                self.deliveries_requeued += 1
            else:
                self.deliveries_dropped += 1
            return False
        receiver_idx = int(columns.receiver[slot])  # type: ignore[index]
        sequence = int(columns.sequence[slot])  # type: ignore[index]
        effective_qos = int(columns.effective_qos[slot])  # type: ignore[index]
        sub_filter = columns.sub_filter[slot]  # type: ignore[index]
        unclamped = columns.unclamped[slot]  # type: ignore[index]
        columns.free(slot)  # type: ignore[arg-type]
        if self._trace is not None:
            line = (
                f"{message.topic}|{message.sender_id}|{self._ids.value(receiver_idx)}"
                f"|{due:.9f}|{sequence}\n".encode()
            )
            self._trace.update(line)
            self._trace_entries.append(
                (due, self._trace_regions.get(receiver_idx, 0), sequence, line)
            )
        if self._obs_observe is not None:
            self._obs_observe(due - message.timestamp)
        if self.tracer is not None:
            # Delivery lifetime broker→client, entirely from sim state
            # (publish timestamp → heap due time): determinism-neutral.
            self.tracer.complete(
                message.topic,
                "delivery",
                message.timestamp,
                due,
                args={
                    "sender": message.sender_id,
                    "receiver": self._ids.value(receiver_idx),
                    "seq": sequence,
                },
            )
        try:
            dispatch_message = target._dispatch_message
        except AttributeError:
            record = DeliveryRecord(
                message=message,
                subscriber_id=self._ids.value(receiver_idx),
                subscription_filter=sub_filter,
                effective_qos=QoS(effective_qos),
                deliver_at=due,
                sequence=sequence,
                unclamped_deliver_at=float(unclamped) if unclamped == unclamped else None,
            )
            try:
                dispatch = target._dispatch
            except AttributeError:  # plain DeliveryTarget: hand the record over untimed
                target._deliver(record)
                self.messages_processed += 1
                return True
            handled = bool(dispatch(record))
        else:
            handled = bool(dispatch_message(message, effective_qos))
        if handled:
            self.messages_processed += 1
        return handled

    def _fire_batch_member(self, batch: _FanoutBatch) -> bool:
        """Fire the next member of an active fan-out cursor (the hot inner loop)."""
        i = batch.pos
        batch.pos = i + 1
        if batch.pos == batch.n:
            self._cursors.remove(batch)
        due = batch.due
        if i == 0:
            self._advance_clock(due)
        self.events_processed += 1
        self._heap_deliveries -= 1
        target = batch.targets[i]
        message = batch.message
        if batch.broker._session_epoch != batch.session_epoch:
            # A connect/disconnect happened since this fan-out was routed; the
            # per-member connected check is only paid in that (rare) case.
            try:
                connected = target.connected
            except AttributeError:
                connected = True
            if connected is False:
                record = self._materialize_batch_member(batch, i)
                if self._requeue_offline(record):
                    self.deliveries_requeued += 1
                else:
                    self.deliveries_dropped += 1
                return False
        if self._trace is not None:
            receiver_idx = int(batch.receiver_idx[i])
            line = (
                f"{message.topic}|{message.sender_id}|{self._ids.value(receiver_idx)}"
                f"|{due:.9f}|{batch.seq0 + i}\n".encode()
            )
            self._trace.update(line)
            self._trace_entries.append(
                (due, self._trace_regions.get(receiver_idx, 0), batch.seq0 + i, line)
            )
        if self._obs_observe is not None:
            self._obs_observe(due - message.timestamp)
        if self.tracer is not None:
            self.tracer.complete(
                message.topic,
                "delivery",
                message.timestamp,
                due,
                args={
                    "sender": message.sender_id,
                    "receiver": self._ids.value(batch.receiver_idx[i]),
                    "seq": batch.seq0 + i,
                },
            )
        try:
            dispatch_message = target._dispatch_message
        except AttributeError:
            record = self._materialize_batch_member(batch, i)
            try:
                dispatch = target._dispatch
            except AttributeError:
                target._deliver(record)
                self.messages_processed += 1
                return True
            handled = bool(dispatch(record))
        else:
            handled = bool(dispatch_message(message, batch.effective_qos[i]))
        if handled:
            self.messages_processed += 1
        return handled

    def _requeue_offline(self, record: DeliveryRecord) -> bool:
        """Try to park an undeliverable record in a persistent offline queue."""
        for broker in self._brokers:
            if broker.requeue_offline(record):
                return True
        return False

    def sweep(self) -> int:
        """Process one batch of events; returns the messages handled.

        The batch size is the number of events pending when the sweep starts;
        events generated *during* the sweep are only drawn if they are due
        earlier than the batch's remainder (the heap keeps global time order),
        otherwise they wait for the next sweep — which is what bounds
        non-quiescing publish loops, exactly like the round-robin pump's
        one-loop-per-client sweep did.
        """
        self._collect()
        budget = self._heap_deliveries + self._heap_actions
        processed = 0
        for _ in range(budget):
            if not self._heap and not self._cursors:
                break
            if self._pop_and_fire():
                processed += 1
        self.sweeps += 1
        return processed

    def run_until_idle(self) -> int:
        """Drain events until nothing is pending; returns messages handled.

        This is run-to-completion: *all* scheduled work — including timed
        actions and deliveries due in the simulated future — executes in time
        order, fast-forwarding the clock as it goes.  To stop at a horizon
        (e.g. between scheduled churn events) use :meth:`run_until_time`
        instead; a recurring self-re-arming action will never let this method
        quiesce.

        Raises ``RuntimeError`` if the system does not quiesce within
        ``max_sweeps`` sweeps (which would indicate a message loop).
        """
        total = 0
        for _ in range(self.max_sweeps):
            processed = self.sweep()
            total += processed
            if (
                processed == 0
                and not self._heap
                and not self._cursors
                and self._collect() == 0
            ):
                return total
        raise RuntimeError(
            f"event scheduler did not quiesce within {self.max_sweeps} sweeps"
        )

    def run_until(self, predicate: Callable[[], bool], max_sweeps: Optional[int] = None) -> bool:
        """Drain events until ``predicate()`` holds or the system quiesces.

        Returns True if the predicate was satisfied.
        """
        limit = max_sweeps if max_sweeps is not None else self.max_sweeps
        if predicate():
            return True
        for _ in range(limit):
            processed = self.sweep()
            if predicate():
                return True
            if (
                processed == 0
                and not self._heap
                and not self._cursors
                and self._collect() == 0
            ):
                return predicate()
        return predicate()

    def run_until_quiet(self, max_events: Optional[int] = None) -> int:
        """Drain every pending *delivery* without fast-forwarding future actions.

        Events are processed in time order until no delivery remains in the
        heap or the registered inboxes; timed actions that come due before the
        last pending delivery fire as usual (and may spawn further deliveries,
        which are chased too), but actions scheduled beyond that point stay in
        the heap.  This is the drain primitive for round boundaries in
        deadline-driven experiments: the control-plane traffic (stats, role
        assignments, broadcasts) settles completely while fault and churn
        actions planned for later simulated times keep their exact firing
        times.

        Returns the number of message callbacks run.  The single-instant loop
        guard from :meth:`run_until_time` applies.

        Contrast with the other drains (see the class example for setup)::

            scheduler.run_until_idle()       # everything, incl. future actions
            scheduler.run_until_time(5.0)    # everything due at or before t=5
            scheduler.run_until_quiet()      # all deliveries; future actions wait
        """
        limit = max_events if max_events is not None else self.max_sweeps
        processed = 0
        events_at_instant = 0
        instant: Optional[float] = None
        self._collect()
        while self._heap_deliveries > 0:
            due = self._next_due()
            if instant is None or due > instant:
                instant = due
                events_at_instant = 0
            events_at_instant += 1
            if events_at_instant > limit:
                raise RuntimeError(
                    f"event scheduler processed {limit} events at simulated time "
                    f"{due} without the clock advancing (message loop?)"
                )
            if self._pop_and_fire():
                processed += 1
            if self._heap_deliveries == 0:
                self._collect()
        return processed

    def run_until_time(
        self,
        deadline: float,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process every event due at or before ``deadline``; return the count.

        Events due later stay in the heap, and the clock ends up exactly at
        ``deadline`` — this is the primitive timed churn scenarios use to step
        a simulation from one scheduled instant to the next.

        ``stop_when`` (checked after every processed event — including between
        members of a broadcast fan-out batch) ends the drain early, leaving
        the clock at the last event's due time instead of fast-forwarding to
        the deadline — deadline-driven FL rounds use it to stop the moment the
        round's global update has landed everywhere.

        A healthy simulation may process arbitrarily many events before the
        deadline as long as simulated time advances; the loop guard
        (``max_events``, default ``max_sweeps``) only trips when that many
        events fire at a *single instant*, which indicates a zero-delay
        publish/reply loop.
        """
        deadline = float(deadline)
        limit = max_events if max_events is not None else self.max_sweeps
        processed = 0
        events_at_instant = 0
        instant: Optional[float] = None
        self._collect()
        if stop_when is not None and stop_when():
            return 0
        while True:
            due = self._next_due()
            if due is None or due > deadline:
                # Inboxes are only scanned at the drain boundaries, not once
                # per event: with schedulers attached to every broker they
                # are always empty, and records a handler deposited through a
                # non-attached broker are swept up here before concluding.
                if self._collect():
                    continue
                self._advance_clock(deadline)
                return processed
            if instant is None or due > instant:
                instant = due
                events_at_instant = 0
            events_at_instant += 1
            if events_at_instant > limit:
                raise RuntimeError(
                    f"event scheduler processed {limit} events at simulated time "
                    f"{due} without the clock advancing (message loop?)"
                )
            if self._pop_and_fire():
                processed += 1
            if stop_when is not None and stop_when():
                return processed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventScheduler(pending={self.pending}, clients={len(self._clients)}, "
            f"brokers={len(self._brokers)}, now={self.now():.6f})"
        )
