"""Event-driven delivery scheduler.

The seed runtime processed messages with a round-robin sweep over client
inboxes, which ignores the per-delivery ``deliver_at`` timestamps the broker
already computes from :class:`~repro.mqtt.network.NetworkModel`.  The
:class:`EventScheduler` replaces that with a classic discrete-event kernel: a
min-heap keyed by ``(deliver_at, sequence)`` (with a monotonic enqueue counter
as the final deterministic tiebreak) from which deliveries are drained in
simulated-time order, advancing the :class:`~repro.sim.clock.SimulationClock`
as it goes.

Two ingestion paths feed the heap:

* the *scheduling path*: a broker with a scheduler attached
  (:meth:`attach_broker`) hands every delivery straight to
  :meth:`schedule` instead of the subscriber's inbox, and
* the *collection path*: records already sitting in registered clients'
  inboxes (delivered before the scheduler was attached, or by a broker
  without one) are pulled into the heap at the start of every sweep, so the
  scheduler is a strict superset of the round-robin pump's behaviour.

Besides deliveries the heap also holds *timed actions* (arbitrary callables
registered with :meth:`call_at`), which is what the churn scenarios in
:mod:`repro.sim.events` use to join/leave/reconnect clients at scheduled
simulation times.

:class:`~repro.runtime.pump.MessagePump` is a thin API-compatible facade over
this class, so all existing choreography code keeps working unchanged.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Iterable, List, Optional, Tuple

from repro.mqtt.client import MQTTClient
from repro.mqtt.messages import DeliveryRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mqtt.broker import MQTTBroker

__all__ = ["EventScheduler"]

#: Heap payload kinds.  Actions sort before deliveries at the same instant via
#: their sentinel sequence of -1 (real delivery sequences start at 1).
_KIND_ACTION = 0
_KIND_DELIVERY = 1

#: Sequence sentinel used for timed actions so that churn events scheduled at
#: time *t* are applied before any delivery due at *t*.
_ACTION_SEQUENCE = -1


class EventScheduler:
    """Deterministic time-ordered delivery scheduler.

    Parameters
    ----------
    clients:
        Initial set of MQTT clients whose inboxes the scheduler collects from.
    clock:
        Optional :class:`~repro.sim.clock.SimulationClock`; advanced to each
        event's due time as the heap drains (never rewound).
    max_sweeps:
        Safety bound for :meth:`run_until_idle` — a publish/reply loop that
        never quiesces raises instead of spinning forever.
    """

    def __init__(
        self,
        clients: Optional[Iterable[MQTTClient]] = None,
        clock: Optional[object] = None,
        max_sweeps: int = 100_000,
    ) -> None:
        self._clients: List[MQTTClient] = list(clients) if clients else []
        self.clock = clock
        self.max_sweeps = int(max_sweeps)

        # Heap entries: (due_time, sequence, enqueue_index, kind, payload).
        # The enqueue index is unique, so comparison never reaches the payload
        # and ties on (due_time, sequence) resolve in creation order.
        self._heap: List[Tuple[float, int, int, int, object]] = []
        self._enqueue_counter = itertools.count()
        self._brokers: List["MQTTBroker"] = []

        self.events_processed = 0
        self.messages_processed = 0
        self.actions_fired = 0
        self.sweeps = 0
        self.last_event_time = 0.0

    # ------------------------------------------------------------------ time

    def now(self) -> float:
        """Current simulated time (falls back to the last event's due time)."""
        if self.clock is not None:
            return float(self.clock.now())
        return self.last_event_time

    def next_event_time(self) -> Optional[float]:
        """Due time of the earliest pending event, or ``None`` when idle."""
        self._collect()
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------ membership

    def register(self, client: MQTTClient) -> None:
        """Add a client to the collection set (idempotent)."""
        if client not in self._clients:
            self._clients.append(client)

    def unregister(self, client: MQTTClient) -> None:
        """Remove a client from the collection set."""
        if client in self._clients:
            self._clients.remove(client)

    @property
    def clients(self) -> List[MQTTClient]:
        """The registered clients, in registration order."""
        return list(self._clients)

    def attach_broker(self, broker: "MQTTBroker") -> None:
        """Route ``broker``'s deliveries through this scheduler's heap."""
        broker.attach_scheduler(self)
        if broker not in self._brokers:
            self._brokers.append(broker)

    def detach_broker(self, broker: "MQTTBroker") -> None:
        """Restore ``broker``'s direct inbox delivery."""
        if broker in self._brokers:
            self._brokers.remove(broker)
        if broker.scheduler is self:
            broker.attach_scheduler(None)

    @property
    def brokers(self) -> List["MQTTBroker"]:
        """Brokers currently delivering through this scheduler."""
        return list(self._brokers)

    # -------------------------------------------------------------- ingestion

    def schedule(self, target: object, record: DeliveryRecord) -> None:
        """Enqueue one delivery for ``target`` (the broker's scheduling path)."""
        heapq.heappush(
            self._heap,
            (
                float(record.deliver_at),
                int(record.sequence),
                next(self._enqueue_counter),
                _KIND_DELIVERY,
                (target, record),
            ),
        )

    def call_at(self, when: float, action: Callable[[], None]) -> float:
        """Schedule ``action()`` to fire at simulated time ``when``.

        Actions scheduled at the same instant as deliveries fire first, so a
        churn event (e.g. a client leaving) takes effect before the messages
        due at that time are dispatched.  Note that :meth:`run_until_idle`
        runs to completion and therefore fast-forwards through future
        actions; drive action-bearing timelines with :meth:`run_until_time`.
        Returns the scheduled time.
        """
        when = float(when)
        heapq.heappush(
            self._heap,
            (when, _ACTION_SEQUENCE, next(self._enqueue_counter), _KIND_ACTION, action),
        )
        return when

    def _collect(self) -> int:
        """Pull records sitting in registered clients' inboxes into the heap."""
        collected = 0
        for client in self._clients:
            for record in client.take_pending():
                self.schedule(client, record)
                collected += 1
        return collected

    @property
    def pending(self) -> int:
        """Events in the heap plus uncollected inbox records."""
        return len(self._heap) + sum(c.pending_messages for c in self._clients)

    # ------------------------------------------------------------- processing

    def _advance_clock(self, due: float) -> None:
        if due > self.last_event_time:
            self.last_event_time = due
        if self.clock is not None:
            self.clock.advance_to(due)

    def _pop_and_fire(self) -> bool:
        """Process the earliest event; returns True if a message callback ran.

        QoS-2 duplicates that the client suppresses (and timed actions) do not
        count as processed messages, mirroring ``MQTTClient.loop`` semantics.
        """
        due, _sequence, _index, kind, payload = heapq.heappop(self._heap)
        self._advance_clock(due)
        self.events_processed += 1
        if kind == _KIND_ACTION:
            payload()  # type: ignore[operator]
            self.actions_fired += 1
            return False
        target, record = payload  # type: ignore[misc]
        dispatch = getattr(target, "_dispatch", None)
        if dispatch is not None:
            handled = bool(dispatch(record))
        else:  # plain DeliveryTarget: hand the record over untimed
            target._deliver(record)
            handled = True
        if handled:
            self.messages_processed += 1
        return handled

    def sweep(self) -> int:
        """Process one batch of events; returns the messages handled.

        The batch size is the number of events pending when the sweep starts;
        events generated *during* the sweep are only drawn if they are due
        earlier than the batch's remainder (the heap keeps global time order),
        otherwise they wait for the next sweep — which is what bounds
        non-quiescing publish loops, exactly like the round-robin pump's
        one-loop-per-client sweep did.
        """
        self._collect()
        budget = len(self._heap)
        processed = 0
        for _ in range(budget):
            if not self._heap:
                break
            if self._pop_and_fire():
                processed += 1
        self.sweeps += 1
        return processed

    def run_until_idle(self) -> int:
        """Drain events until nothing is pending; returns messages handled.

        This is run-to-completion: *all* scheduled work — including timed
        actions and deliveries due in the simulated future — executes in time
        order, fast-forwarding the clock as it goes.  To stop at a horizon
        (e.g. between scheduled churn events) use :meth:`run_until_time`
        instead; a recurring self-re-arming action will never let this method
        quiesce.

        Raises ``RuntimeError`` if the system does not quiesce within
        ``max_sweeps`` sweeps (which would indicate a message loop).
        """
        total = 0
        for _ in range(self.max_sweeps):
            processed = self.sweep()
            total += processed
            if processed == 0 and not self._heap and self._collect() == 0:
                return total
        raise RuntimeError(
            f"event scheduler did not quiesce within {self.max_sweeps} sweeps"
        )

    def run_until(self, predicate: Callable[[], bool], max_sweeps: Optional[int] = None) -> bool:
        """Drain events until ``predicate()`` holds or the system quiesces.

        Returns True if the predicate was satisfied.
        """
        limit = max_sweeps if max_sweeps is not None else self.max_sweeps
        if predicate():
            return True
        for _ in range(limit):
            processed = self.sweep()
            if predicate():
                return True
            if processed == 0 and not self._heap and self._collect() == 0:
                return predicate()
        return predicate()

    def run_until_time(self, deadline: float, max_events: Optional[int] = None) -> int:
        """Process every event due at or before ``deadline``; return the count.

        Events due later stay in the heap, and the clock ends up exactly at
        ``deadline`` — this is the primitive timed churn scenarios use to step
        a simulation from one scheduled instant to the next.

        A healthy simulation may process arbitrarily many events before the
        deadline as long as simulated time advances; the loop guard
        (``max_events``, default ``max_sweeps``) only trips when that many
        events fire at a *single instant*, which indicates a zero-delay
        publish/reply loop.
        """
        deadline = float(deadline)
        limit = max_events if max_events is not None else self.max_sweeps
        processed = 0
        events_at_instant = 0
        instant: Optional[float] = None
        self._collect()
        while True:
            if not self._heap or self._heap[0][0] > deadline:
                # Inboxes are only scanned at the drain boundaries, not once
                # per event: with schedulers attached to every broker they
                # are always empty, and records a handler deposited through a
                # non-attached broker are swept up here before concluding.
                if self._collect():
                    continue
                self._advance_clock(deadline)
                return processed
            due = self._heap[0][0]
            if instant is None or due > instant:
                instant = due
                events_at_instant = 0
            events_at_instant += 1
            if events_at_instant > limit:
                raise RuntimeError(
                    f"event scheduler processed {limit} events at simulated time "
                    f"{due} without the clock advancing (message loop?)"
                )
            if self._pop_and_fire():
                processed += 1

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventScheduler(pending={self.pending}, clients={len(self._clients)}, "
            f"brokers={len(self._brokers)}, now={self.now():.6f})"
        )
