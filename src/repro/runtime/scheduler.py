"""Event-driven delivery scheduler.

The seed runtime processed messages with a round-robin sweep over client
inboxes, which ignores the per-delivery ``deliver_at`` timestamps the broker
already computes from :class:`~repro.mqtt.network.NetworkModel`.  The
:class:`EventScheduler` replaces that with a classic discrete-event kernel: a
min-heap keyed by ``(deliver_at, sequence)`` (with a monotonic enqueue counter
as the final deterministic tiebreak) from which deliveries are drained in
simulated-time order, advancing the :class:`~repro.sim.clock.SimulationClock`
as it goes.

Two ingestion paths feed the heap:

* the *scheduling path*: a broker with a scheduler attached
  (:meth:`attach_broker`) hands every delivery straight to
  :meth:`schedule` instead of the subscriber's inbox, and
* the *collection path*: records already sitting in registered clients'
  inboxes (delivered before the scheduler was attached, or by a broker
  without one) are pulled into the heap at the start of every sweep, so the
  scheduler is a strict superset of the round-robin pump's behaviour.

Besides deliveries the heap also holds *timed actions* (arbitrary callables
registered with :meth:`call_at`), which is what the churn scenarios in
:mod:`repro.sim.events` use to join/leave/reconnect clients at scheduled
simulation times.

:class:`~repro.runtime.pump.MessagePump` is a thin API-compatible facade over
this class, so all existing choreography code keeps working unchanged.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from repro.mqtt.client import MQTTClient
from repro.mqtt.messages import DeliveryRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mqtt.broker import MQTTBroker

__all__ = ["EventScheduler"]

#: Heap payload kinds.  Actions sort before deliveries at the same instant via
#: their sentinel sequence of -1 (real delivery sequences start at 1).
_KIND_ACTION = 0
_KIND_DELIVERY = 1

#: Sequence sentinel used for timed actions so that churn events scheduled at
#: time *t* are applied before any delivery due at *t*.
_ACTION_SEQUENCE = -1


class EventScheduler:
    """Deterministic time-ordered delivery scheduler.

    Parameters
    ----------
    clients:
        Initial set of MQTT clients whose inboxes the scheduler collects from.
    clock:
        Optional :class:`~repro.sim.clock.SimulationClock`; advanced to each
        event's due time as the heap drains (never rewound).
    max_sweeps:
        Safety bound for :meth:`run_until_idle` — a publish/reply loop that
        never quiesces raises instead of spinning forever.
    fifo_per_connection:
        Model per-connection in-order delivery (MQTT runs over TCP): each
        delivery's ``deliver_at`` is clamped to the previous in-flight
        delivery of the same (sender, receiver) pair, so a small message can
        never overtake a large earlier one on the same logical connection.
    record_trace:
        Maintain a running SHA-256 digest over every dispatched delivery
        (topic, sender, receiver, due time).  Two runs of the same scenario
        with the same seed must produce identical digests — the scenario
        determinism tests pin exactly that.  Off by default (costs a hash
        update per message).

    Example
    -------
    Attach a broker, let clients publish, then drain in time order:

    >>> from repro.mqtt.broker import MQTTBroker
    >>> from repro.mqtt.client import MQTTClient
    >>> from repro.sim.clock import SimulationClock
    >>> clock = SimulationClock()
    >>> broker = MQTTBroker("b", clock=clock)
    >>> scheduler = EventScheduler(clock=clock)
    >>> scheduler.attach_broker(broker)
    >>> sub = MQTTClient("sub"); _ = sub.connect(broker); _ = sub.subscribe("bus")
    >>> scheduler.register(sub)
    >>> pub = MQTTClient("pub"); _ = pub.connect(broker)
    >>> _ = pub.publish("bus", b"hello")
    >>> fired = []
    >>> _ = scheduler.call_at(10.0, lambda: fired.append("tick"))
    >>> scheduler.run_until_time(1.0)   # delivery drains, action stays queued
    1
    >>> fired
    []
    >>> scheduler.run_until_idle()      # fast-forwards to the action at t=10
    0
    >>> fired
    ['tick']
    """

    def __init__(
        self,
        clients: Optional[Iterable[MQTTClient]] = None,
        clock: Optional[object] = None,
        max_sweeps: int = 100_000,
        fifo_per_connection: bool = True,
        record_trace: bool = False,
    ) -> None:
        self._clients: List[MQTTClient] = list(clients) if clients else []
        self.clock = clock
        self.max_sweeps = int(max_sweeps)
        self.fifo_per_connection = bool(fifo_per_connection)

        # Heap entries: (due_time, sequence, enqueue_index, kind, payload).
        # The enqueue index is unique, so comparison never reaches the payload
        # and ties on (due_time, sequence) resolve in creation order.
        self._heap: List[Tuple[float, int, int, int, object]] = []
        self._heap_deliveries = 0
        self._enqueue_counter = itertools.count()
        self._brokers: List["MQTTBroker"] = []
        # Latest scheduled deliver_at per (sender, receiver) logical connection.
        self._fifo_tails: Dict[Tuple[Optional[str], str], float] = {}
        self._trace = hashlib.sha256() if record_trace else None
        # Observability hooks (repro.obs).  Both default to detached so the
        # per-event cost is one ``is None`` check; ``tools/bench.py`` gates
        # the attached cost (``obs_overhead_ratio``).
        self.tracer: Optional[object] = None
        self._obs_observe: Optional[Callable[[float], None]] = None

        self.events_processed = 0
        self.messages_processed = 0
        self.actions_fired = 0
        self.sweeps = 0
        self.deliveries_dropped = 0
        self.deliveries_requeued = 0
        self.deliveries_cancelled = 0
        self.last_event_time = 0.0

    # ------------------------------------------------------------------ time

    def now(self) -> float:
        """Current simulated time (falls back to the last event's due time)."""
        if self.clock is not None:
            return float(self.clock.now())
        return self.last_event_time

    def next_event_time(self) -> Optional[float]:
        """Due time of the earliest pending event, or ``None`` when idle."""
        self._collect()
        if not self._heap:
            return None
        return self._heap[0][0]

    # ------------------------------------------------------------ membership

    def register(self, client: MQTTClient) -> None:
        """Add a client to the collection set (idempotent)."""
        if client not in self._clients:
            self._clients.append(client)

    def unregister(self, client: MQTTClient) -> None:
        """Remove a client from the collection set."""
        if client in self._clients:
            self._clients.remove(client)

    @property
    def clients(self) -> List[MQTTClient]:
        """The registered clients, in registration order."""
        return list(self._clients)

    def attach_broker(self, broker: "MQTTBroker") -> None:
        """Route ``broker``'s deliveries through this scheduler's heap."""
        broker.attach_scheduler(self)
        if broker not in self._brokers:
            self._brokers.append(broker)

    def detach_broker(self, broker: "MQTTBroker") -> None:
        """Restore ``broker``'s direct inbox delivery."""
        if broker in self._brokers:
            self._brokers.remove(broker)
        if broker.scheduler is self:
            broker.attach_scheduler(None)

    @property
    def brokers(self) -> List["MQTTBroker"]:
        """Brokers currently delivering through this scheduler."""
        return list(self._brokers)

    def attach_metrics(self, registry: Optional[object]) -> None:
        """Attach (or detach, with ``None``) a live delivery-latency histogram.

        The bound ``observe`` method is cached here so the per-delivery cost
        is one attribute load and one call; passing ``None`` restores the
        zero-instrumentation path.
        """
        if registry is None:
            self._obs_observe = None
            return
        self._obs_observe = registry.histogram(
            "scheduler_delivery_latency_s",
            buckets=(0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0),
        ).observe

    # -------------------------------------------------------------- ingestion

    def schedule(self, target: object, record: DeliveryRecord) -> None:
        """Enqueue one delivery for ``target`` (the broker's scheduling path)."""
        if self.fifo_per_connection:
            # Per-connection FIFO: a delivery never arrives before an earlier
            # one from the same sender to the same receiver, mirroring MQTT's
            # in-order guarantee over a single TCP connection.
            key = (record.message.sender_id, record.subscriber_id)
            tail = self._fifo_tails.get(key)
            if tail is not None and record.deliver_at < tail:
                # Remember the unclamped time: if the delivery ahead of us is
                # later cancelled, cancel_deliveries re-clamps from here.
                if record.unclamped_deliver_at is None:
                    record.unclamped_deliver_at = record.deliver_at
                record.deliver_at = tail
            self._fifo_tails[key] = record.deliver_at
        heapq.heappush(
            self._heap,
            (
                float(record.deliver_at),
                int(record.sequence),
                next(self._enqueue_counter),
                _KIND_DELIVERY,
                (target, record),
            ),
        )
        self._heap_deliveries += 1

    def call_at(self, when: float, action: Callable[[], None]) -> float:
        """Schedule ``action()`` to fire at simulated time ``when``.

        Actions scheduled at the same instant as deliveries fire first, so a
        churn event (e.g. a client leaving) takes effect before the messages
        due at that time are dispatched.  Note that :meth:`run_until_idle`
        runs to completion and therefore fast-forwards through future
        actions; drive action-bearing timelines with :meth:`run_until_time`.
        Returns the scheduled time.
        """
        when = float(when)
        heapq.heappush(
            self._heap,
            (when, _ACTION_SEQUENCE, next(self._enqueue_counter), _KIND_ACTION, action),
        )
        return when

    def _collect(self) -> int:
        """Pull records sitting in registered clients' inboxes into the heap."""
        collected = 0
        for client in self._clients:
            for record in client.take_pending():
                self.schedule(client, record)
                collected += 1
        return collected

    @property
    def pending(self) -> int:
        """Events in the heap plus uncollected inbox records."""
        return len(self._heap) + sum(c.pending_messages for c in self._clients)

    def pending_deliveries(self) -> List[DeliveryRecord]:
        """In-flight delivery records, ordered by ``(deliver_at, sequence)``.

        The scenario runner uses this to identify stragglers at a round
        deadline: any sender with an upload still in flight is late.
        """
        records = [
            entry[4][1]  # type: ignore[index]
            for entry in self._heap
            if entry[3] == _KIND_DELIVERY
        ]
        return sorted(records, key=lambda r: (r.deliver_at, r.sequence))

    def cancel_deliveries(self, predicate: Callable[[DeliveryRecord], bool]) -> int:
        """Remove in-flight deliveries matching ``predicate``; return the count.

        Timed actions are never cancelled.  This is how a deadline-driven
        round cuts off a straggler's late uploads: the messages vanish from
        the network rather than arriving after the round moved on.
        """
        kept: List[Tuple[float, int, int, int, object]] = []
        cancelled = 0
        cancelled_pairs = set()
        for entry in self._heap:
            if entry[3] == _KIND_DELIVERY and predicate(entry[4][1]):  # type: ignore[index]
                record = entry[4][1]  # type: ignore[index]
                cancelled_pairs.add((record.message.sender_id, record.subscriber_id))
                cancelled += 1
            else:
                kept.append(entry)
        if cancelled:
            self._heap_deliveries -= cancelled
            self.deliveries_cancelled += cancelled
            # Release the affected connections' FIFO clamp slots: drop the
            # cancelled tails, then re-run the clamp for the surviving
            # deliveries of those pairs from their *unclamped* times — a
            # survivor that was queued behind a cancelled far-future upload
            # (or the pair's next-round traffic) must not stay pushed back by
            # a message that no longer exists.
            for pair in cancelled_pairs:
                self._fifo_tails.pop(pair, None)
            kept = self._reclamp_pairs(kept, cancelled_pairs)
            heapq.heapify(kept)
            self._heap = kept
        return cancelled

    def _reclamp_pairs(
        self,
        entries: List[Tuple[float, int, int, int, object]],
        pairs: set,
    ) -> List[Tuple[float, int, int, int, object]]:
        """Re-run the per-connection FIFO clamp for ``pairs`` after a cancel.

        Surviving deliveries of each pair are re-clamped in enqueue order
        starting from each record's original (pre-clamp) ``deliver_at``, and
        the pair's tail is rebuilt from the result.  Entries of other pairs
        and timed actions pass through untouched.  A record whose re-clamped
        time lands in the simulated past simply fires at the next drain step
        — exactly how an inbox-collected record behaves.
        """
        affected: Dict[Tuple[Optional[str], str], List[int]] = {}
        for index, entry in enumerate(entries):
            if entry[3] != _KIND_DELIVERY:
                continue
            record = entry[4][1]  # type: ignore[index]
            pair = (record.message.sender_id, record.subscriber_id)
            if pair in pairs:
                affected.setdefault(pair, []).append(index)
        if not affected:
            return entries
        replacements: Dict[int, Tuple[float, int, int, int, object]] = {}
        for pair, indices in affected.items():
            tail: Optional[float] = None
            # Enqueue order (entry[2]) is scheduling order for the pair.
            for index in sorted(indices, key=lambda i: entries[i][2]):
                due, sequence, enqueue_index, kind, payload = entries[index]
                record = payload[1]  # type: ignore[index]
                base = (
                    record.unclamped_deliver_at
                    if record.unclamped_deliver_at is not None
                    else record.deliver_at
                )
                if self.fifo_per_connection and tail is not None and base < tail:
                    new_due = tail
                else:
                    new_due = base
                    record.unclamped_deliver_at = None  # no longer clamped
                record.deliver_at = new_due
                tail = new_due
                if new_due != due:
                    replacements[index] = (new_due, sequence, enqueue_index, kind, payload)
            if tail is not None:
                self._fifo_tails[pair] = tail
        if not replacements:
            return entries
        return [replacements.get(i, entry) for i, entry in enumerate(entries)]

    @property
    def trace_digest(self) -> Optional[str]:
        """Hex digest of the delivery trace (``None`` unless ``record_trace``)."""
        if self._trace is None:
            return None
        return self._trace.hexdigest()

    # ------------------------------------------------------------- processing

    def _advance_clock(self, due: float) -> None:
        if due > self.last_event_time:
            self.last_event_time = due
        if self.clock is not None:
            self.clock.advance_to(due)

    def _pop_and_fire(self) -> bool:
        """Process the earliest event; returns True if a message callback ran.

        QoS-2 duplicates that the client suppresses (and timed actions) do not
        count as processed messages, mirroring ``MQTTClient.loop`` semantics.
        """
        due, _sequence, _index, kind, payload = heapq.heappop(self._heap)
        self._advance_clock(due)
        self.events_processed += 1
        if kind == _KIND_ACTION:
            payload()  # type: ignore[operator]
            self.actions_fired += 1
            return False
        self._heap_deliveries -= 1
        target, record = payload  # type: ignore[misc]
        # A client that disconnected after the broker routed this delivery but
        # before its deliver_at never receives it.  QoS>0 records destined for
        # a persistent session are requeued in the broker's offline queue (they
        # replay on reconnect); everything else is dropped, as on a real
        # broker where the TCP connection died mid-flight.
        # (try/except beats getattr-with-default on this per-delivery path:
        # the attributes exist on every real target, so the guard is free.)
        try:
            connected = target.connected
        except AttributeError:
            connected = True
        if connected is False:
            if self._requeue_offline(record):
                self.deliveries_requeued += 1
            else:
                self.deliveries_dropped += 1
            return False
        if self._trace is not None:
            message = record.message
            self._trace.update(
                f"{message.topic}|{message.sender_id}|{record.subscriber_id}"
                f"|{record.deliver_at:.9f}|{record.sequence}\n".encode()
            )
        if self._obs_observe is not None:
            self._obs_observe(due - record.message.timestamp)
        if self.tracer is not None:
            # Delivery lifetime broker→client, entirely from sim state
            # (publish timestamp → heap due time): determinism-neutral.
            message = record.message
            self.tracer.complete(
                message.topic,
                "delivery",
                message.timestamp,
                due,
                args={
                    "sender": message.sender_id,
                    "receiver": record.subscriber_id,
                    "seq": record.sequence,
                },
            )
        try:
            dispatch = target._dispatch
        except AttributeError:  # plain DeliveryTarget: hand the record over untimed
            target._deliver(record)
            self.messages_processed += 1
            return True
        handled = bool(dispatch(record))
        if handled:
            self.messages_processed += 1
        return handled

    def _requeue_offline(self, record: DeliveryRecord) -> bool:
        """Try to park an undeliverable record in a persistent offline queue."""
        for broker in self._brokers:
            if broker.requeue_offline(record):
                return True
        return False

    def sweep(self) -> int:
        """Process one batch of events; returns the messages handled.

        The batch size is the number of events pending when the sweep starts;
        events generated *during* the sweep are only drawn if they are due
        earlier than the batch's remainder (the heap keeps global time order),
        otherwise they wait for the next sweep — which is what bounds
        non-quiescing publish loops, exactly like the round-robin pump's
        one-loop-per-client sweep did.
        """
        self._collect()
        budget = len(self._heap)
        processed = 0
        for _ in range(budget):
            if not self._heap:
                break
            if self._pop_and_fire():
                processed += 1
        self.sweeps += 1
        return processed

    def run_until_idle(self) -> int:
        """Drain events until nothing is pending; returns messages handled.

        This is run-to-completion: *all* scheduled work — including timed
        actions and deliveries due in the simulated future — executes in time
        order, fast-forwarding the clock as it goes.  To stop at a horizon
        (e.g. between scheduled churn events) use :meth:`run_until_time`
        instead; a recurring self-re-arming action will never let this method
        quiesce.

        Raises ``RuntimeError`` if the system does not quiesce within
        ``max_sweeps`` sweeps (which would indicate a message loop).
        """
        total = 0
        for _ in range(self.max_sweeps):
            processed = self.sweep()
            total += processed
            if processed == 0 and not self._heap and self._collect() == 0:
                return total
        raise RuntimeError(
            f"event scheduler did not quiesce within {self.max_sweeps} sweeps"
        )

    def run_until(self, predicate: Callable[[], bool], max_sweeps: Optional[int] = None) -> bool:
        """Drain events until ``predicate()`` holds or the system quiesces.

        Returns True if the predicate was satisfied.
        """
        limit = max_sweeps if max_sweeps is not None else self.max_sweeps
        if predicate():
            return True
        for _ in range(limit):
            processed = self.sweep()
            if predicate():
                return True
            if processed == 0 and not self._heap and self._collect() == 0:
                return predicate()
        return predicate()

    def run_until_quiet(self, max_events: Optional[int] = None) -> int:
        """Drain every pending *delivery* without fast-forwarding future actions.

        Events are processed in time order until no delivery remains in the
        heap or the registered inboxes; timed actions that come due before the
        last pending delivery fire as usual (and may spawn further deliveries,
        which are chased too), but actions scheduled beyond that point stay in
        the heap.  This is the drain primitive for round boundaries in
        deadline-driven experiments: the control-plane traffic (stats, role
        assignments, broadcasts) settles completely while fault and churn
        actions planned for later simulated times keep their exact firing
        times.

        Returns the number of message callbacks run.  The single-instant loop
        guard from :meth:`run_until_time` applies.

        Contrast with the other drains (see the class example for setup)::

            scheduler.run_until_idle()       # everything, incl. future actions
            scheduler.run_until_time(5.0)    # everything due at or before t=5
            scheduler.run_until_quiet()      # all deliveries; future actions wait
        """
        limit = max_events if max_events is not None else self.max_sweeps
        processed = 0
        events_at_instant = 0
        instant: Optional[float] = None
        self._collect()
        while self._heap_deliveries > 0:
            due = self._heap[0][0]
            if instant is None or due > instant:
                instant = due
                events_at_instant = 0
            events_at_instant += 1
            if events_at_instant > limit:
                raise RuntimeError(
                    f"event scheduler processed {limit} events at simulated time "
                    f"{due} without the clock advancing (message loop?)"
                )
            if self._pop_and_fire():
                processed += 1
            if self._heap_deliveries == 0:
                self._collect()
        return processed

    def run_until_time(
        self,
        deadline: float,
        max_events: Optional[int] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Process every event due at or before ``deadline``; return the count.

        Events due later stay in the heap, and the clock ends up exactly at
        ``deadline`` — this is the primitive timed churn scenarios use to step
        a simulation from one scheduled instant to the next.

        ``stop_when`` (checked after every processed event) ends the drain
        early, leaving the clock at the last event's due time instead of
        fast-forwarding to the deadline — deadline-driven FL rounds use it to
        stop the moment the round's global update has landed everywhere.

        A healthy simulation may process arbitrarily many events before the
        deadline as long as simulated time advances; the loop guard
        (``max_events``, default ``max_sweeps``) only trips when that many
        events fire at a *single instant*, which indicates a zero-delay
        publish/reply loop.
        """
        deadline = float(deadline)
        limit = max_events if max_events is not None else self.max_sweeps
        processed = 0
        events_at_instant = 0
        instant: Optional[float] = None
        self._collect()
        if stop_when is not None and stop_when():
            return 0
        while True:
            if not self._heap or self._heap[0][0] > deadline:
                # Inboxes are only scanned at the drain boundaries, not once
                # per event: with schedulers attached to every broker they
                # are always empty, and records a handler deposited through a
                # non-attached broker are swept up here before concluding.
                if self._collect():
                    continue
                self._advance_clock(deadline)
                return processed
            due = self._heap[0][0]
            if instant is None or due > instant:
                instant = due
                events_at_instant = 0
            events_at_instant += 1
            if events_at_instant > limit:
                raise RuntimeError(
                    f"event scheduler processed {limit} events at simulated time "
                    f"{due} without the clock advancing (message loop?)"
                )
            if self._pop_and_fire():
                processed += 1
            if stop_when is not None and stop_when():
                return processed

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"EventScheduler(pending={self.pending}, clients={len(self._clients)}, "
            f"brokers={len(self._brokers)}, now={self.now():.6f})"
        )
