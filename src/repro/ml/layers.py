"""Neural-network layers with explicit forward/backward passes.

Every layer follows the same contract:

* ``forward(x, training)`` caches whatever it needs for the backward pass and
  returns the output,
* ``backward(grad_output)`` consumes the cached activations, accumulates
  parameter gradients in ``self.grads`` and returns the gradient with respect
  to the layer input,
* ``params`` / ``grads`` are dicts of numpy arrays; :class:`Sequential`
  namespaces them as ``"<index>.<name>"`` to form a PyTorch-style state dict.

The implementation is deliberately mini-batch vectorized: each layer does a
constant number of BLAS-backed numpy operations per batch, no per-sample
Python loops, matching the HPC guidance for hot numerical paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ml.initializers import he_normal, xavier_uniform, zeros
from repro.utils.validation import require_in_range, require_positive

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "Sequential",
]


class Layer:
    """Base class for all layers."""

    def __init__(self) -> None:
        self.params: Dict[str, np.ndarray] = {}
        self.grads: Dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Compute the layer output for input ``x``."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Back-propagate ``grad_output`` and return the input gradient."""
        raise NotImplementedError

    def zero_grad(self) -> None:
        """Reset accumulated gradients to zero."""
        for key, grad in self.grads.items():
            grad.fill(0.0)

    @property
    def num_parameters(self) -> int:
        """Total number of scalar parameters in this layer."""
        return int(sum(p.size for p in self.params.values()))

    def __call__(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        return self.forward(x, training=training)


class Linear(Layer):
    """Fully connected layer: ``y = x @ W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    rng:
        Generator used for weight initialization (required so FL clients can
        start from identical weights when seeded identically).
    init:
        ``"he"`` (default, for ReLU nets) or ``"xavier"``.
    bias:
        Whether to include the additive bias term.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        init: str = "he",
        bias: bool = True,
    ) -> None:
        super().__init__()
        require_positive(in_features, "in_features")
        require_positive(out_features, "out_features")
        rng = rng or np.random.default_rng(0)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        if init == "he":
            weight = he_normal((in_features, out_features), rng)
        elif init == "xavier":
            weight = xavier_uniform((in_features, out_features), rng)
        else:
            raise ValueError(f"unknown init {init!r}; expected 'he' or 'xavier'")
        self.params["weight"] = np.ascontiguousarray(weight, dtype=np.float64)
        self.grads["weight"] = np.zeros_like(self.params["weight"])
        self.use_bias = bool(bias)
        if self.use_bias:
            self.params["bias"] = zeros((out_features,))
            self.grads["bias"] = np.zeros_like(self.params["bias"])
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Linear expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x if training else None
        out = x @ self.params["weight"]
        if self.use_bias:
            out += self.params["bias"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        self.grads["weight"] += self._input.T @ grad_output
        if self.use_bias:
            self.grads["bias"] += grad_output.sum(axis=0)
        return grad_output @ self.params["weight"].T


class ReLU(Layer):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output * self._mask


class LeakyReLU(Layer):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        require_in_range(negative_slope, "negative_slope", 0.0, 1.0)
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        mask = x > 0
        self._mask = mask if training else None
        return np.where(mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output * np.where(self._mask, 1.0, self.negative_slope)


class Sigmoid(Layer):
    """Logistic sigmoid activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))
        self._output = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output * self._output * (1.0 - self._output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = np.tanh(x)
        self._output = out if training else None
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output * (1.0 - self._output**2)


class Dropout(Layer):
    """Inverted dropout; a no-op outside training mode."""

    def __init__(self, p: float = 0.5, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        require_in_range(p, "p", 0.0, 1.0, inclusive=True)
        if p >= 1.0:
            raise ValueError("dropout probability must be < 1.0")
        self.p = float(p)
        self.rng = rng or np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        if not training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        mask = (self.rng.random(x.shape) < keep) / keep
        self._mask = mask
        return x * mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class Flatten(Layer):
    """Flattens all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: Optional[tuple] = None

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        self._input_shape = x.shape if training else None
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise RuntimeError("backward called before a training-mode forward pass")
        return grad_output.reshape(self._input_shape)


class Sequential(Layer):
    """Composes layers in order and exposes a unified state dict.

    State-dict keys are ``"<layer index>.<param name>"`` (e.g. ``"0.weight"``),
    mirroring ``torch.nn.Sequential`` so the paper's code snippet translates
    directly.
    """

    def __init__(self, layers: List[Layer]) -> None:
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def zero_grad(self) -> None:
        for layer in self.layers:
            layer.zero_grad()

    @property
    def num_parameters(self) -> int:
        return int(sum(layer.num_parameters for layer in self.layers))

    # ------------------------------------------------------------ state dict

    def state_dict(self, copy: bool = True) -> Dict[str, np.ndarray]:
        """Return the model parameters as an ordered flat dict."""
        state: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.params.items():
                state[f"{index}.{name}"] = value.copy() if copy else value
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters from ``state`` (shape-checked, copied in place)."""
        own = {}
        for index, layer in enumerate(self.layers):
            for name in layer.params:
                own[f"{index}.{name}"] = (layer, name)
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}"
            )
        for key, value in state.items():
            if key not in own:
                continue
            layer, name = own[key]
            target = layer.params[name]
            value = np.asarray(value, dtype=target.dtype)
            if value.shape != target.shape:
                raise ValueError(
                    f"shape mismatch for {key!r}: expected {target.shape}, got {value.shape}"
                )
            np.copyto(target, value)

    def parameter_grads(self) -> Dict[str, np.ndarray]:
        """Return the gradient dict aligned with :meth:`state_dict` keys."""
        grads: Dict[str, np.ndarray] = {}
        for index, layer in enumerate(self.layers):
            for name, value in layer.grads.items():
                grads[f"{index}.{name}"] = value
        return grads

    def parameters(self) -> Dict[str, np.ndarray]:
        """Live (uncopied) view of the parameters keyed like the state dict."""
        return self.state_dict(copy=False)
