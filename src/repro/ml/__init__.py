"""From-scratch numpy ML substrate used in place of PyTorch.

The paper's evaluation trains a fully connected MLP on MNIST with
cross-entropy loss and the Adam optimizer.  This package provides the minimal
but complete machinery to do the same at laptop scale:

* :mod:`repro.ml.layers` — composable layers with explicit forward/backward,
* :mod:`repro.ml.losses` — cross-entropy (with integrated softmax) and MSE,
* :mod:`repro.ml.optim` — SGD, momentum, Adam, AdamW,
* :mod:`repro.ml.models` — model factories and the :class:`ClassifierModel`
  training wrapper that the FL client's training pipeline uses,
* :mod:`repro.ml.state` — state-dict utilities (flatten/unflatten, sizes),
* :mod:`repro.ml.data` — array datasets and mini-batch loaders,
* :mod:`repro.ml.datasets` — deterministic synthetic "digits" data standing in
  for MNIST (no network access in this environment),
* :mod:`repro.ml.partition` — IID / Dirichlet / shard client partitioners,
* :mod:`repro.ml.metrics` — accuracy and related metrics.

All arrays are ``float64`` by default for numerical robustness in tests, with
``float32`` used on the wire (see :mod:`repro.core.model_controller`) to keep
payload sizes realistic.
"""

from repro.ml.layers import (
    Layer,
    Linear,
    ReLU,
    LeakyReLU,
    Sigmoid,
    Tanh,
    Dropout,
    Flatten,
    Sequential,
)
from repro.ml.losses import CrossEntropyLoss, MSELoss, softmax
from repro.ml.optim import SGD, Adam, AdamW, Optimizer
from repro.ml.models import ClassifierModel, make_mlp, make_logistic_regression, make_paper_mlp
from repro.ml.state import (
    state_dict_num_parameters,
    state_dict_nbytes,
    flatten_state_dict,
    unflatten_state_dict,
    zeros_like_state_dict,
    state_dicts_allclose,
)
from repro.ml.data import ArrayDataset, DataLoader, train_test_split
from repro.ml.datasets import synthetic_digits, SyntheticDigitsConfig
from repro.ml.partition import iid_partition, dirichlet_partition, shard_partition
from repro.ml.metrics import accuracy, confusion_matrix, top_k_accuracy

__all__ = [
    "Layer",
    "Linear",
    "ReLU",
    "LeakyReLU",
    "Sigmoid",
    "Tanh",
    "Dropout",
    "Flatten",
    "Sequential",
    "CrossEntropyLoss",
    "MSELoss",
    "softmax",
    "SGD",
    "Adam",
    "AdamW",
    "Optimizer",
    "ClassifierModel",
    "make_mlp",
    "make_logistic_regression",
    "make_paper_mlp",
    "state_dict_num_parameters",
    "state_dict_nbytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "zeros_like_state_dict",
    "state_dicts_allclose",
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "synthetic_digits",
    "SyntheticDigitsConfig",
    "iid_partition",
    "dirichlet_partition",
    "shard_partition",
    "accuracy",
    "confusion_matrix",
    "top_k_accuracy",
]
