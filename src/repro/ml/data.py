"""Datasets and mini-batch loaders."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.utils.validation import require_positive

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """A dataset backed by in-memory feature and label arrays.

    Features are stored as a contiguous 2-D ``float64`` array (samples ×
    features) and labels as a 1-D integer array; slicing returns views, so
    client partitions share the underlying memory with the full dataset.
    """

    def __init__(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.ascontiguousarray(features, dtype=np.float64)
        labels = np.ascontiguousarray(labels)
        if features.ndim == 1:
            features = features.reshape(-1, 1)
        if features.ndim != 2:
            raise ValueError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim != 1:
            raise ValueError(f"labels must be 1-D, got shape {labels.shape}")
        if len(features) != len(labels):
            raise ValueError(
                f"features ({len(features)}) and labels ({len(labels)}) lengths differ"
            )
        self.features = features
        self.labels = labels

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.features[index], self.labels[index]

    @property
    def num_features(self) -> int:
        """Width of the feature matrix."""
        return int(self.features.shape[1])

    @property
    def num_classes(self) -> int:
        """Number of distinct labels present (assumes labels are 0..K-1)."""
        if len(self.labels) == 0:
            return 0
        return int(self.labels.max()) + 1

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Return a new dataset containing only the rows in ``indices``."""
        indices = np.asarray(indices, dtype=np.intp)
        return ArrayDataset(self.features[indices], self.labels[indices])

    def class_counts(self) -> np.ndarray:
        """Histogram of labels (length = num_classes)."""
        if len(self.labels) == 0:
            return np.zeros(0, dtype=np.int64)
        return np.bincount(self.labels.astype(np.int64), minlength=self.num_classes)


class DataLoader:
    """Iterates a dataset in shuffled mini-batches.

    Shuffling uses the provided generator so that identical seeds reproduce
    identical batch orderings, which keeps FL experiments bit-for-bit
    repeatable.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = True,
        rng: Optional[np.random.Generator] = None,
        drop_last: bool = False,
    ) -> None:
        require_positive(batch_size, "batch_size")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = bool(shuffle)
        self.rng = rng or np.random.default_rng(0)
        self.drop_last = bool(drop_last)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return -(-n // self.batch_size) if n else 0

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = np.arange(n)
        if self.shuffle:
            self.rng.shuffle(order)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            batch = order[start : start + self.batch_size]
            if self.drop_last and len(batch) < self.batch_size:
                break
            yield self.dataset.features[batch], self.dataset.labels[batch]


def train_test_split(
    dataset: ArrayDataset,
    test_fraction: float = 0.2,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Split a dataset into train/test subsets with a shuffled boundary."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = rng or np.random.default_rng(0)
    n = len(dataset)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test_idx, train_idx = order[:n_test], order[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
