"""Client data partitioners.

The paper assigns each of the 5 FL clients 1 % of MNIST.  These helpers
produce the index sets for each client under three standard FL regimes:

* :func:`iid_partition` — uniformly random, equally sized shards;
* :func:`dirichlet_partition` — label distribution per client drawn from a
  Dirichlet(α); small α ⇒ strongly non-IID;
* :func:`shard_partition` — the classic FedAvg "sort by label and deal out
  shards" pathological non-IID split.

All partitioners return ``list[np.ndarray]`` of row indices into the dataset,
so they compose with :meth:`repro.ml.data.ArrayDataset.subset`.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.ml.data import ArrayDataset
from repro.utils.validation import require_positive

__all__ = ["iid_partition", "dirichlet_partition", "shard_partition", "fraction_subsample"]


def fraction_subsample(
    dataset: ArrayDataset, fraction: float, rng: Optional[np.random.Generator] = None
) -> np.ndarray:
    """Return indices selecting a random ``fraction`` of the dataset."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    rng = rng or np.random.default_rng(0)
    n = len(dataset)
    count = max(1, int(round(n * fraction)))
    return rng.choice(n, size=count, replace=False)


def iid_partition(
    dataset: ArrayDataset, num_clients: int, rng: Optional[np.random.Generator] = None
) -> List[np.ndarray]:
    """Split the dataset into ``num_clients`` equal IID shards."""
    require_positive(num_clients, "num_clients")
    rng = rng or np.random.default_rng(0)
    n = len(dataset)
    if n < num_clients:
        raise ValueError(f"cannot split {n} samples across {num_clients} clients")
    order = rng.permutation(n)
    return [np.sort(part) for part in np.array_split(order, num_clients)]


def dirichlet_partition(
    dataset: ArrayDataset,
    num_clients: int,
    alpha: float = 0.5,
    rng: Optional[np.random.Generator] = None,
    min_samples_per_client: int = 1,
) -> List[np.ndarray]:
    """Label-skewed split where each class is divided by a Dirichlet(α) draw.

    Smaller ``alpha`` concentrates each class on fewer clients (more
    heterogeneity); ``alpha → ∞`` approaches IID.
    """
    require_positive(num_clients, "num_clients")
    require_positive(alpha, "alpha")
    require_positive(min_samples_per_client, "min_samples_per_client", strict=False)
    rng = rng or np.random.default_rng(0)
    labels = dataset.labels
    num_classes = dataset.num_classes

    for _attempt in range(100):
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for cls in range(num_classes):
            cls_idx = np.flatnonzero(labels == cls)
            if len(cls_idx) == 0:
                continue
            rng.shuffle(cls_idx)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            # Convert proportions to cut points over this class's samples.
            cuts = (np.cumsum(proportions)[:-1] * len(cls_idx)).astype(int)
            for client, part in enumerate(np.split(cls_idx, cuts)):
                client_indices[client].extend(part.tolist())
        sizes = [len(ix) for ix in client_indices]
        if min(sizes) >= min_samples_per_client:
            return [np.sort(np.asarray(ix, dtype=np.intp)) for ix in client_indices]
    raise RuntimeError(
        "dirichlet_partition failed to satisfy min_samples_per_client after 100 attempts; "
        "increase alpha or reduce the number of clients"
    )


def shard_partition(
    dataset: ArrayDataset,
    num_clients: int,
    shards_per_client: int = 2,
    rng: Optional[np.random.Generator] = None,
) -> List[np.ndarray]:
    """Pathological non-IID split: sort by label, deal contiguous shards to clients."""
    require_positive(num_clients, "num_clients")
    require_positive(shards_per_client, "shards_per_client")
    rng = rng or np.random.default_rng(0)
    n = len(dataset)
    total_shards = num_clients * shards_per_client
    if n < total_shards:
        raise ValueError(f"need at least {total_shards} samples for {total_shards} shards, have {n}")
    order = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(order, total_shards)
    shard_ids = rng.permutation(total_shards)
    partitions: List[np.ndarray] = []
    for client in range(num_clients):
        ids = shard_ids[client * shards_per_client : (client + 1) * shards_per_client]
        merged = np.concatenate([shards[s] for s in ids])
        partitions.append(np.sort(merged))
    return partitions
