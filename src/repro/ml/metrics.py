"""Classification metrics."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "top_k_accuracy", "confusion_matrix"]


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of correct predictions.

    ``predictions`` may be class indices (1-D) or logits/probabilities (2-D,
    in which case the argmax is taken).
    """
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != labels.shape:
        raise ValueError(
            f"shape mismatch: predictions {predictions.shape} vs labels {labels.shape}"
        )
    if predictions.size == 0:
        raise ValueError("cannot compute accuracy of zero samples")
    return float(np.mean(predictions == labels))


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is within the top-k scored classes."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if not 1 <= k <= logits.shape[1]:
        raise ValueError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top_k = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(np.mean(hits))


def confusion_matrix(predictions: np.ndarray, labels: np.ndarray, num_classes: int | None = None) -> np.ndarray:
    """Confusion matrix with true classes as rows and predictions as columns."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), labels.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels.astype(np.intp), predictions.astype(np.intp)), 1)
    return matrix
