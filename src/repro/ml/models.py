"""Model factories and the training wrapper used by FL clients.

:class:`ClassifierModel` bundles a :class:`~repro.ml.layers.Sequential`
network with a loss and exposes the operations the SDFLMQ training pipeline
needs: ``train_epoch``, ``evaluate``, ``state_dict`` / ``load_state_dict`` and
parameter metadata.  The factories build the specific architectures used by
the examples and benchmarks, including :func:`make_paper_mlp`, the fully
connected MLP from the paper's Listing 1 / Section VI evaluation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.ml.data import ArrayDataset, DataLoader
from repro.ml.layers import Dropout, Linear, ReLU, Sequential, Tanh
from repro.ml.losses import CrossEntropyLoss
from repro.ml.metrics import accuracy
from repro.ml.optim import Adam, Optimizer
from repro.ml.state import state_dict_nbytes, state_dict_num_parameters
from repro.utils.rng import rng_from_seed
from repro.utils.validation import require_positive

__all__ = ["ClassifierModel", "make_mlp", "make_logistic_regression", "make_paper_mlp"]


def make_mlp(
    input_dim: int,
    hidden_dims: tuple[int, ...] = (64,),
    num_classes: int = 10,
    seed: int = 0,
    dropout: float = 0.0,
    activation: str = "relu",
) -> Sequential:
    """Build a fully connected MLP classifier network.

    Parameters
    ----------
    input_dim:
        Number of input features.
    hidden_dims:
        Width of each hidden layer.
    num_classes:
        Number of output logits.
    seed:
        Seed for weight initialization; identical seeds produce identical
        initial weights, which FL experiments rely on to start every client
        from the same global model.
    dropout:
        Dropout probability applied after each hidden activation (0 disables).
    activation:
        ``"relu"`` or ``"tanh"``.
    """
    require_positive(input_dim, "input_dim")
    require_positive(num_classes, "num_classes")
    layers = []
    rng = rng_from_seed(seed, "mlp-init")
    previous = input_dim
    for layer_index, width in enumerate(hidden_dims):
        require_positive(width, f"hidden_dims[{layer_index}]")
        init = "he" if activation == "relu" else "xavier"
        layers.append(Linear(previous, width, rng=rng, init=init))
        if activation == "relu":
            layers.append(ReLU())
        elif activation == "tanh":
            layers.append(Tanh())
        else:
            raise ValueError(f"unknown activation {activation!r}")
        if dropout > 0.0:
            layers.append(Dropout(dropout, rng=rng_from_seed(seed, "dropout", layer_index)))
        previous = width
    layers.append(Linear(previous, num_classes, rng=rng, init="xavier"))
    return Sequential(layers)


def make_logistic_regression(input_dim: int, num_classes: int, seed: int = 0) -> Sequential:
    """A single linear layer (multinomial logistic regression)."""
    rng = rng_from_seed(seed, "logreg-init")
    return Sequential([Linear(input_dim, num_classes, rng=rng, init="xavier")])


def make_paper_mlp(input_dim: int = 256, num_classes: int = 10, seed: int = 0) -> Sequential:
    """The MLP used throughout the paper's evaluation (Listing 1, §VI).

    The paper does not give the exact layer widths; a single 64-unit hidden
    layer over a 16×16 input reproduces the reported behaviour (≈90 % accuracy
    after a couple of rounds on a digit task) while keeping payloads small
    enough for 20-client simulations to run quickly.
    """
    return make_mlp(input_dim=input_dim, hidden_dims=(64,), num_classes=num_classes, seed=seed)


class ClassifierModel:
    """A trainable classifier: network + cross-entropy loss + metadata.

    This is what the SDFLMQ client's *training pipeline* manipulates and what
    the *model controller* snapshots into state dicts for transmission.
    """

    def __init__(self, network: Sequential, name: str = "model") -> None:
        self.network = network
        self.name = name
        self.loss_fn = CrossEntropyLoss()

    # ----------------------------------------------------------------- sizes

    @property
    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return self.network.num_parameters

    def payload_nbytes(self, dtype: str = "float32") -> int:
        """Size of the state dict if transmitted with the given element type."""
        return state_dict_nbytes(self.network.state_dict(copy=False), dtype)

    # ------------------------------------------------------------- train/eval

    def train_epoch(self, loader: DataLoader, optimizer: Optimizer) -> float:
        """Run one epoch of mini-batch SGD; returns the mean training loss."""
        if optimizer.model is not self.network:
            raise ValueError("optimizer is bound to a different network")
        total_loss = 0.0
        batches = 0
        for features, labels in loader:
            optimizer.zero_grad()
            logits = self.network.forward(features, training=True)
            loss = self.loss_fn.forward(logits, labels)
            grad = self.loss_fn.backward()
            self.network.backward(grad)
            optimizer.step()
            total_loss += loss
            batches += 1
        if batches == 0:
            raise ValueError("training loader produced no batches")
        return total_loss / batches

    def fit(
        self,
        dataset: ArrayDataset,
        epochs: int = 1,
        batch_size: int = 32,
        lr: float = 1e-3,
        optimizer: Optional[Optimizer] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> list[float]:
        """Convenience loop: train for ``epochs`` epochs, returning per-epoch losses."""
        require_positive(epochs, "epochs")
        optimizer = optimizer or Adam(self.network, lr=lr)
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=True, rng=rng or np.random.default_rng(0))
        return [self.train_epoch(loader, optimizer) for _ in range(epochs)]

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted class indices for a feature matrix."""
        logits = self.network.forward(np.asarray(features, dtype=np.float64), training=False)
        return logits.argmax(axis=1)

    def evaluate(self, dataset: ArrayDataset, batch_size: int = 256) -> Dict[str, float]:
        """Return ``{"loss": ..., "accuracy": ...}`` over the whole dataset."""
        total_loss = 0.0
        correct = 0
        count = 0
        for start in range(0, len(dataset), batch_size):
            features = dataset.features[start : start + batch_size]
            labels = dataset.labels[start : start + batch_size]
            logits = self.network.forward(features, training=False)
            total_loss += self.loss_fn.forward(logits, labels) * len(labels)
            correct += int((logits.argmax(axis=1) == labels).sum())
            count += len(labels)
        if count == 0:
            raise ValueError("cannot evaluate on an empty dataset")
        return {"loss": total_loss / count, "accuracy": correct / count}

    def accuracy(self, dataset: ArrayDataset) -> float:
        """Test accuracy over ``dataset``."""
        return accuracy(self.predict(dataset.features), dataset.labels)

    # ------------------------------------------------------------- state dict

    def state_dict(self, copy: bool = True) -> Dict[str, np.ndarray]:
        """Snapshot the network parameters."""
        return self.network.state_dict(copy=copy)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Overwrite the network parameters from ``state``."""
        self.network.load_state_dict(state)

    def clone_state(self) -> Dict[str, np.ndarray]:
        """Alias of ``state_dict(copy=True)`` kept for readability at call sites."""
        return self.state_dict(copy=True)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ClassifierModel(name={self.name!r}, parameters={self.num_parameters}, "
            f"layers={len(self.network.layers)})"
        )
