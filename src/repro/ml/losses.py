"""Loss functions with analytically fused gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["softmax", "CrossEntropyLoss", "MSELoss"]


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


class CrossEntropyLoss:
    """Softmax + categorical cross-entropy over integer class labels.

    ``forward`` returns the mean loss; ``backward`` returns the gradient with
    respect to the *logits* (the softmax Jacobian is folded in analytically,
    which is both faster and numerically safer than chaining a separate
    softmax layer).
    """

    def __init__(self) -> None:
        self._probs: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Mean cross-entropy of ``logits`` (batch, classes) vs integer ``labels``."""
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (batch, classes), got shape {logits.shape}")
        labels = np.asarray(labels)
        if labels.ndim != 1 or labels.shape[0] != logits.shape[0]:
            raise ValueError(
                f"labels must be 1-D with length {logits.shape[0]}, got shape {labels.shape}"
            )
        if labels.min(initial=0) < 0 or labels.max(initial=0) >= logits.shape[1]:
            raise ValueError("labels out of range for the given number of classes")
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        batch = np.arange(logits.shape[0])
        picked = np.clip(probs[batch, labels], 1e-12, None)
        return float(-np.mean(np.log(picked)))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._probs is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probs.copy()
        batch = np.arange(grad.shape[0])
        grad[batch, self._labels] -= 1.0
        grad /= grad.shape[0]
        return grad

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class MSELoss:
    """Mean squared error over arbitrary-shaped predictions."""

    def __init__(self) -> None:
        self._diff: np.ndarray | None = None

    def forward(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean of squared element-wise differences."""
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ValueError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        self._diff = predictions - targets
        return float(np.mean(self._diff**2))

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the predictions."""
        if self._diff is None:
            raise RuntimeError("backward called before forward")
        return 2.0 * self._diff / self._diff.size

    def __call__(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(predictions, targets)
