"""State-dict utilities: sizes, flattening and comparison.

A "state dict" throughout the reproduction is an ordered ``dict[str,
np.ndarray]`` mapping parameter names to arrays, exactly what
``Sequential.state_dict()`` returns.  These helpers are used by the model
controller (payload sizing), the aggregation strategies (vectorized reduction
over flattened views) and the tests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "state_dict_num_parameters",
    "state_dict_nbytes",
    "flatten_state_dict",
    "unflatten_state_dict",
    "zeros_like_state_dict",
    "state_dicts_allclose",
    "cast_state_dict",
]

StateDict = Dict[str, np.ndarray]


def state_dict_num_parameters(state: StateDict) -> int:
    """Total number of scalar parameters across all entries."""
    return int(sum(np.asarray(v).size for v in state.values()))


def state_dict_nbytes(state: StateDict, dtype: np.dtype | str | None = None) -> int:
    """Total byte size of the state dict, optionally as if cast to ``dtype``."""
    if dtype is None:
        return int(sum(np.asarray(v).nbytes for v in state.values()))
    itemsize = np.dtype(dtype).itemsize
    return int(sum(np.asarray(v).size * itemsize for v in state.values()))


def flatten_state_dict(state: StateDict) -> Tuple[np.ndarray, List[Tuple[str, Tuple[int, ...]]]]:
    """Concatenate all parameters into one 1-D vector.

    Returns the vector and a spec (name, shape) list that
    :func:`unflatten_state_dict` uses to reverse the operation.  Keys are
    processed in insertion order, which is deterministic for dicts produced by
    ``Sequential.state_dict``.
    """
    spec: List[Tuple[str, Tuple[int, ...]]] = []
    parts: List[np.ndarray] = []
    for name, value in state.items():
        array = np.asarray(value, dtype=np.float64)
        spec.append((name, tuple(array.shape)))
        parts.append(array.ravel())
    if not parts:
        return np.zeros(0, dtype=np.float64), spec
    return np.concatenate(parts), spec


def unflatten_state_dict(
    vector: np.ndarray, spec: List[Tuple[str, Tuple[int, ...]]]
) -> StateDict:
    """Rebuild a state dict from a flat vector and the spec from flattening."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    expected = sum(int(np.prod(shape)) if shape else 1 for _, shape in spec)
    if vector.size != expected:
        raise ValueError(f"flat vector has {vector.size} entries, spec expects {expected}")
    out: StateDict = {}
    offset = 0
    for name, shape in spec:
        size = int(np.prod(shape)) if shape else 1
        out[name] = vector[offset : offset + size].reshape(shape).copy()
        offset += size
    return out


def zeros_like_state_dict(state: StateDict) -> StateDict:
    """Return a state dict of zeros with the same keys/shapes/dtypes."""
    return {name: np.zeros_like(np.asarray(value)) for name, value in state.items()}


def cast_state_dict(state: StateDict, dtype: np.dtype | str) -> StateDict:
    """Return a copy of ``state`` with every array cast to ``dtype`` (contiguous)."""
    dtype = np.dtype(dtype)
    return {name: np.ascontiguousarray(np.asarray(value), dtype=dtype) for name, value in state.items()}


def state_dicts_allclose(a: StateDict, b: StateDict, rtol: float = 1e-6, atol: float = 1e-8) -> bool:
    """Whether two state dicts have identical keys and element-wise close values."""
    if set(a) != set(b):
        return False
    for name in a:
        if np.asarray(a[name]).shape != np.asarray(b[name]).shape:
            return False
        if not np.allclose(a[name], b[name], rtol=rtol, atol=atol):
            return False
    return True
