"""Weight initialization schemes for the numpy layers."""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = ["xavier_uniform", "he_normal", "zeros", "normal"]


def xavier_uniform(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/sigmoid layers."""
    fan_in, fan_out = shape[0], shape[1]
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(shape: Tuple[int, int], rng: np.random.Generator) -> np.ndarray:
    """He/Kaiming normal initialization, suited to ReLU layers."""
    fan_in = shape[0]
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def normal(shape: Tuple[int, ...], rng: np.random.Generator, std: float = 0.01) -> np.ndarray:
    """Plain Gaussian initialization with a small standard deviation."""
    return rng.normal(0.0, std, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zero initialization (biases)."""
    return np.zeros(shape, dtype=np.float64)
