"""Synthetic datasets standing in for MNIST.

The paper evaluates on MNIST handwritten digits.  This environment has no
network access, so :func:`synthetic_digits` generates a deterministic
MNIST-like 10-class task: each class is a smooth random prototype "glyph" on a
``side × side`` grid; samples are produced by translating the prototype by a
couple of pixels, scaling its intensity, and adding pixel noise.  The task has
the properties the evaluation relies on: it is easy enough for a small MLP to
reach ~90 % test accuracy within a few epochs, hard enough that accuracy
climbs over multiple FL rounds, and class-structured so that non-IID
partitions meaningfully hurt convergence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.data import ArrayDataset
from repro.utils.rng import rng_from_seed
from repro.utils.validation import require_in_range, require_positive

__all__ = ["SyntheticDigitsConfig", "synthetic_digits", "make_gaussian_blobs"]


@dataclass(frozen=True)
class SyntheticDigitsConfig:
    """Configuration for the synthetic digits generator.

    Attributes
    ----------
    num_samples:
        Total number of samples to generate.
    num_classes:
        Number of digit classes (10 to mirror MNIST).
    side:
        Image side length; feature dimension is ``side * side`` (16 → 256,
        close to a down-scaled MNIST).
    noise:
        Standard deviation of the additive pixel noise.
    max_shift:
        Maximum per-sample translation (pixels) in each direction.
    seed:
        Seed controlling prototypes, shifts and noise.
    """

    num_samples: int = 2000
    num_classes: int = 10
    side: int = 16
    noise: float = 0.25
    max_shift: int = 2
    seed: int = 7

    def __post_init__(self) -> None:
        require_positive(self.num_samples, "num_samples")
        require_positive(self.num_classes, "num_classes")
        require_positive(self.side, "side")
        require_in_range(self.noise, "noise", 0.0, 10.0)
        require_in_range(self.max_shift, "max_shift", 0, self.side - 1)


def _smooth_prototype(rng: np.random.Generator, side: int) -> np.ndarray:
    """Generate a smooth, glyph-like prototype image in [0, 1]."""
    coarse_side = max(2, side // 4)
    coarse = rng.random((coarse_side, coarse_side))
    # Bilinear-ish upsampling by repeating then box-blurring keeps the
    # prototype smooth (structured) without needing scipy in the hot path.
    image = np.kron(coarse, np.ones((side // coarse_side + 1, side // coarse_side + 1)))
    image = image[:side, :side]
    kernel = np.ones((3, 3)) / 9.0
    padded = np.pad(image, 1, mode="edge")
    blurred = np.zeros_like(image)
    for dy in range(3):
        for dx in range(3):
            blurred += kernel[dy, dx] * padded[dy : dy + side, dx : dx + side]
    blurred -= blurred.min()
    peak = blurred.max()
    if peak > 0:
        blurred /= peak
    return blurred


def synthetic_digits(config: SyntheticDigitsConfig | None = None) -> ArrayDataset:
    """Generate the synthetic MNIST-like dataset described in the module docstring."""
    config = config or SyntheticDigitsConfig()
    rng = rng_from_seed(config.seed, "synthetic_digits")
    side = config.side
    prototypes = np.stack([_smooth_prototype(rng, side) for _ in range(config.num_classes)])

    labels = rng.integers(0, config.num_classes, size=config.num_samples)
    features = np.empty((config.num_samples, side * side), dtype=np.float64)

    shifts = rng.integers(-config.max_shift, config.max_shift + 1, size=(config.num_samples, 2))
    scales = rng.uniform(0.8, 1.2, size=config.num_samples)
    noise = rng.normal(0.0, config.noise, size=(config.num_samples, side, side))

    for i in range(config.num_samples):
        proto = prototypes[labels[i]]
        shifted = np.roll(proto, shift=(shifts[i, 0], shifts[i, 1]), axis=(0, 1))
        sample = scales[i] * shifted + noise[i]
        features[i] = sample.ravel()

    # Standardize features globally (mirrors torchvision's MNIST normalization).
    mean = features.mean()
    std = features.std()
    if std > 0:
        features = (features - mean) / std
    return ArrayDataset(features, labels.astype(np.int64))


def make_gaussian_blobs(
    num_samples: int = 1000,
    num_classes: int = 4,
    num_features: int = 32,
    separation: float = 3.0,
    noise: float = 1.0,
    seed: int = 0,
) -> ArrayDataset:
    """A simpler Gaussian-blob classification task for fast unit tests."""
    require_positive(num_samples, "num_samples")
    require_positive(num_classes, "num_classes")
    require_positive(num_features, "num_features")
    rng = rng_from_seed(seed, "gaussian_blobs")
    centers = rng.normal(0.0, separation, size=(num_classes, num_features))
    labels = rng.integers(0, num_classes, size=num_samples)
    features = centers[labels] + rng.normal(0.0, noise, size=(num_samples, num_features))
    return ArrayDataset(features, labels.astype(np.int64))
