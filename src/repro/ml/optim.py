"""Optimizers updating :class:`~repro.ml.layers.Sequential` parameters in place.

Optimizers operate on the live parameter/gradient dicts returned by
``Sequential.parameters()`` / ``Sequential.parameter_grads()``.  All state
(momentum buffers, Adam moments) is keyed by parameter name so that an
optimizer can survive a global-model update that replaces parameter *values*
(FedAvg writes into the same arrays via ``load_state_dict``).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.ml.layers import Sequential
from repro.utils.validation import require_in_range, require_positive

__all__ = ["Optimizer", "SGD", "Adam", "AdamW"]


class Optimizer:
    """Base class; subclasses implement :meth:`step`.

    All optimizers support an optional FedProx-style proximal term: when a
    reference state has been installed with :meth:`set_proximal_reference` and
    ``proximal_mu`` is positive, every step adds ``mu · (w − w_ref)`` to the
    gradient, pulling local training toward the last synchronized global model
    (Li et al., *Federated Optimization in Heterogeneous Networks*).  This is
    one of the "variety of FL methodologies" the framework is meant to stay
    flexible for (paper §III.A.4).
    """

    def __init__(self, model: Sequential, lr: float, proximal_mu: float = 0.0) -> None:
        require_positive(lr, "lr")
        require_positive(proximal_mu, "proximal_mu", strict=False)
        self.model = model
        self.lr = float(lr)
        self.proximal_mu = float(proximal_mu)
        self._proximal_reference: Dict[str, np.ndarray] = {}

    def set_proximal_reference(self, state: Dict[str, np.ndarray]) -> None:
        """Install the global-model snapshot the proximal term pulls toward."""
        self._proximal_reference = {name: np.asarray(value, dtype=np.float64).copy()
                                    for name, value in state.items()}

    def clear_proximal_reference(self) -> None:
        """Remove the proximal anchor (plain local SGD/Adam again)."""
        self._proximal_reference = {}

    def _proximal_grad(self, name: str, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        """Return ``grad`` with the proximal pull added (no-op when disabled)."""
        if self.proximal_mu <= 0.0:
            return grad
        reference = self._proximal_reference.get(name)
        if reference is None:
            return grad
        return grad + self.proximal_mu * (param - reference)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on the model."""
        self.model.zero_grad()

    def step(self) -> None:
        """Apply one update using the currently accumulated gradients."""
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        model: Sequential,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        proximal_mu: float = 0.0,
    ) -> None:
        super().__init__(model, lr, proximal_mu=proximal_mu)
        require_in_range(momentum, "momentum", 0.0, 1.0)
        require_positive(weight_decay, "weight_decay", strict=False)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: Dict[str, np.ndarray] = {}

    def step(self) -> None:
        params = self.model.parameters()
        grads = self.model.parameter_grads()
        for name, param in params.items():
            grad = self._proximal_grad(name, param, grads[name])
            if self.weight_decay > 0.0:
                grad = grad + self.weight_decay * param
            if self.momentum > 0.0:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(param)
                    self._velocity[name] = velocity
                velocity *= self.momentum
                velocity += grad
                update = velocity
            else:
                update = grad
            param -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba), the optimizer used in the paper's snippet."""

    def __init__(
        self,
        model: Sequential,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        proximal_mu: float = 0.0,
    ) -> None:
        super().__init__(model, lr, proximal_mu=proximal_mu)
        beta1, beta2 = betas
        require_in_range(beta1, "beta1", 0.0, 1.0, inclusive=False)
        require_in_range(beta2, "beta2", 0.0, 1.0, inclusive=False)
        require_positive(eps, "eps")
        require_positive(weight_decay, "weight_decay", strict=False)
        self.beta1, self.beta2 = float(beta1), float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m: Dict[str, np.ndarray] = {}
        self._v: Dict[str, np.ndarray] = {}
        self._t = 0

    def _decay_into_grad(self, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        if self.weight_decay > 0.0:
            return grad + self.weight_decay * param
        return grad

    def step(self) -> None:
        self._t += 1
        params = self.model.parameters()
        grads = self.model.parameter_grads()
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for name, param in params.items():
            grad = self._proximal_grad(name, param, grads[name])
            grad = self._decay_into_grad(param, grad)
            m = self._m.setdefault(name, np.zeros_like(param))
            v = self._v.setdefault(name, np.zeros_like(param))
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * np.square(grad)
            m_hat = m / bias1
            v_hat = v / bias2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    @property
    def step_count(self) -> int:
        """Number of optimizer steps applied so far."""
        return self._t


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def _decay_into_grad(self, param: np.ndarray, grad: np.ndarray) -> np.ndarray:
        # Decoupled: decay is applied directly to the parameter in step().
        return grad

    def step(self) -> None:
        if self.weight_decay > 0.0:
            for param in self.model.parameters().values():
                param -= self.lr * self.weight_decay * param
        super().step()
