"""Device, time and resource simulation.

The paper's evaluation runs on real machines and reads system stats through
``psutil`` / ``tracemalloc``.  This package provides the simulated equivalent:

* :class:`SimulationClock` — explicit logical time advanced by cost models;
* :class:`DeviceProfile` / :class:`DeviceFleet` — heterogeneous edge-device
  characteristics (compute speed, memory capacity, bandwidth) and their
  round-to-round drift;
* :class:`CostModel` — converts work (training samples, parameters received,
  aggregation fan-in) into seconds of simulated processing time, including the
  memory-overflow penalty the paper's motivation section describes;
* :class:`ResourceAccountant` — per-device memory accounting with high-water
  marks (the ``tracemalloc`` substitute);
* :class:`EventLog` — a timestamped record of everything that happened in an
  experiment, used by the harness to compute per-round and total delays.
"""

from repro.sim.clock import SimulationClock
from repro.sim.device import DeviceProfile, DeviceStats, DeviceFleet, DEVICE_TIERS
from repro.sim.costs import CostModel
from repro.sim.resources import ResourceAccountant, MemoryOverflowEvent
from repro.sim.events import CHURN_ACTIONS, ChurnEvent, ChurnSchedule, EventLog, SimEvent

__all__ = [
    "CHURN_ACTIONS",
    "ChurnEvent",
    "ChurnSchedule",
    "SimulationClock",
    "DeviceProfile",
    "DeviceStats",
    "DeviceFleet",
    "DEVICE_TIERS",
    "CostModel",
    "ResourceAccountant",
    "MemoryOverflowEvent",
    "EventLog",
    "SimEvent",
]
