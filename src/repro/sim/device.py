"""Heterogeneous edge-device profiles and their round-to-round drift.

A :class:`DeviceProfile` captures the static capability of one simulated edge
device; :class:`DeviceStats` is the dynamic snapshot a client reports to the
coordinator after each round (the reproduction's stand-in for the psutil /
tracemalloc numbers the paper collects).  :class:`DeviceFleet` builds a
heterogeneous population from named tiers and can *drift* the dynamic state
between rounds, which is what makes per-round role rearrangement worthwhile.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

import numpy as np

from repro.mqtt.network import LinkProfile
from repro.utils.rng import SeedSequenceFactory
from repro.utils.validation import require_in_range, require_positive

__all__ = ["DeviceProfile", "DeviceStats", "DeviceFleet", "DEVICE_TIERS"]


@dataclass(frozen=True)
class DeviceProfile:
    """Static capability description of one simulated device.

    Attributes
    ----------
    device_id:
        Identifier, matching the FL client id that runs on the device.
    tier:
        Human-readable tier name (``"server"``, ``"laptop"``, ``"rpi"``, ...).
    compute_speed:
        Relative compute throughput; 1.0 is the reference device.  Training
        and aggregation times scale inversely with this.
    memory_bytes:
        RAM available to the FL process (parameters + buffered peer models).
    bandwidth_bps:
        Network bandwidth (bytes/second) of the device's broker link.
    latency_s:
        One-way network latency to the broker.
    availability:
        Probability the device is responsive in a given round (1.0 = always).
    """

    device_id: str
    tier: str = "laptop"
    compute_speed: float = 1.0
    memory_bytes: int = 512 * 1024 * 1024
    bandwidth_bps: float = 12.5e6
    latency_s: float = 0.005
    availability: float = 1.0

    def __post_init__(self) -> None:
        require_positive(self.compute_speed, "compute_speed")
        require_positive(self.memory_bytes, "memory_bytes")
        require_positive(self.bandwidth_bps, "bandwidth_bps")
        require_positive(self.latency_s, "latency_s", strict=False)
        require_in_range(self.availability, "availability", 0.0, 1.0)

    def link_profile(self) -> LinkProfile:
        """The MQTT link profile implied by this device's network capability."""
        return LinkProfile(latency_s=self.latency_s, bandwidth_bps=self.bandwidth_bps)


@dataclass
class DeviceStats:
    """Dynamic per-round snapshot a client reports to the coordinator.

    Field names intentionally mirror what SDFLMQ collects with psutil (§IV):
    available memory, CPU load, bandwidth estimate — plus the round the
    snapshot belongs to.
    """

    device_id: str
    round_index: int = 0
    available_memory_bytes: int = 512 * 1024 * 1024
    cpu_load: float = 0.0
    bandwidth_bps: float = 12.5e6
    battery_level: float = 1.0

    def as_dict(self) -> Dict[str, float]:
        """JSON-serializable representation (sent inside MQTTFC payloads)."""
        return {
            "device_id": self.device_id,
            "round_index": int(self.round_index),
            "available_memory_bytes": int(self.available_memory_bytes),
            "cpu_load": float(self.cpu_load),
            "bandwidth_bps": float(self.bandwidth_bps),
            "battery_level": float(self.battery_level),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "DeviceStats":
        """Inverse of :meth:`as_dict`."""
        return cls(
            device_id=str(data["device_id"]),
            round_index=int(data.get("round_index", 0)),
            available_memory_bytes=int(data.get("available_memory_bytes", 0)),
            cpu_load=float(data.get("cpu_load", 0.0)),
            bandwidth_bps=float(data.get("bandwidth_bps", 0.0)),
            battery_level=float(data.get("battery_level", 1.0)),
        )


#: Named device tiers used to compose heterogeneous fleets.  Numbers are
#: loosely calibrated to "edge server", "laptop", "smartphone" and
#: "Raspberry-Pi-class" devices; the absolute values matter less than their
#: ratios, which drive who should host aggregation.
DEVICE_TIERS: Dict[str, Dict[str, float]] = {
    "server": {
        "compute_speed": 4.0,
        "memory_bytes": 8 * 1024**3,
        "bandwidth_bps": 125e6,
        "latency_s": 0.002,
    },
    "laptop": {
        "compute_speed": 1.0,
        "memory_bytes": 2 * 1024**3,
        "bandwidth_bps": 12.5e6,
        "latency_s": 0.005,
    },
    "phone": {
        "compute_speed": 0.4,
        "memory_bytes": 512 * 1024**2,
        "bandwidth_bps": 6.25e6,
        "latency_s": 0.015,
    },
    "rpi": {
        "compute_speed": 0.15,
        "memory_bytes": 128 * 1024**2,
        "bandwidth_bps": 3.125e6,
        "latency_s": 0.010,
    },
}


class DeviceFleet:
    """A heterogeneous population of simulated devices.

    Parameters
    ----------
    profiles:
        The static device profiles, keyed by device id.
    seed:
        Seed for the dynamic drift stream.
    """

    def __init__(self, profiles: List[DeviceProfile], seed: int = 0) -> None:
        if not profiles:
            raise ValueError("a device fleet needs at least one device")
        ids = [p.device_id for p in profiles]
        if len(set(ids)) != len(ids):
            raise ValueError("device ids must be unique within a fleet")
        self._profiles: Dict[str, DeviceProfile] = {p.device_id: p for p in profiles}
        self._seeds = SeedSequenceFactory(seed)
        self._stats: Dict[str, DeviceStats] = {
            p.device_id: DeviceStats(
                device_id=p.device_id,
                available_memory_bytes=p.memory_bytes,
                bandwidth_bps=p.bandwidth_bps,
            )
            for p in profiles
        }

    # ------------------------------------------------------------ factories

    @classmethod
    def homogeneous(
        cls, num_devices: int, tier: str = "laptop", prefix: str = "client", seed: int = 0
    ) -> "DeviceFleet":
        """A fleet where every device has identical (tier-default) capability."""
        require_positive(num_devices, "num_devices")
        if tier not in DEVICE_TIERS:
            raise ValueError(f"unknown tier {tier!r}; options: {sorted(DEVICE_TIERS)}")
        spec = DEVICE_TIERS[tier]
        profiles = [
            DeviceProfile(
                device_id=f"{prefix}_{index:03d}",
                tier=tier,
                compute_speed=spec["compute_speed"],
                memory_bytes=int(spec["memory_bytes"]),
                bandwidth_bps=spec["bandwidth_bps"],
                latency_s=spec["latency_s"],
            )
            for index in range(num_devices)
        ]
        return cls(profiles, seed=seed)

    @classmethod
    def heterogeneous(
        cls,
        num_devices: int,
        tier_mix: Optional[Dict[str, float]] = None,
        prefix: str = "client",
        seed: int = 0,
        jitter: float = 0.15,
    ) -> "DeviceFleet":
        """A fleet with devices drawn from a tier mix plus per-device jitter.

        ``tier_mix`` maps tier name to sampling weight; the default mix skews
        toward constrained devices, matching the paper's motivating IoT
        scenario where no powerful central unit exists.
        """
        require_positive(num_devices, "num_devices")
        require_in_range(jitter, "jitter", 0.0, 1.0)
        tier_mix = tier_mix or {"laptop": 0.35, "phone": 0.40, "rpi": 0.20, "server": 0.05}
        unknown = set(tier_mix) - set(DEVICE_TIERS)
        if unknown:
            raise ValueError(f"unknown tiers in mix: {sorted(unknown)}")
        seeds = SeedSequenceFactory(seed)
        rng = seeds.generator("fleet-composition")
        tiers = list(tier_mix)
        weights = np.array([tier_mix[t] for t in tiers], dtype=np.float64)
        weights = weights / weights.sum()
        profiles: List[DeviceProfile] = []
        for index in range(num_devices):
            tier = str(rng.choice(tiers, p=weights))
            spec = DEVICE_TIERS[tier]
            scale = 1.0 + float(rng.uniform(-jitter, jitter))
            profiles.append(
                DeviceProfile(
                    device_id=f"{prefix}_{index:03d}",
                    tier=tier,
                    compute_speed=spec["compute_speed"] * scale,
                    memory_bytes=int(spec["memory_bytes"] * scale),
                    bandwidth_bps=spec["bandwidth_bps"] * scale,
                    latency_s=spec["latency_s"],
                )
            )
        return cls(profiles, seed=seeds.seed("fleet-drift"))

    # -------------------------------------------------------------- accessors

    def __len__(self) -> int:
        return len(self._profiles)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._profiles

    @property
    def device_ids(self) -> List[str]:
        """All device ids (sorted for deterministic iteration)."""
        return sorted(self._profiles)

    def profile(self, device_id: str) -> DeviceProfile:
        """Static profile for ``device_id``."""
        return self._profiles[device_id]

    def stats(self, device_id: str) -> DeviceStats:
        """Latest dynamic stats snapshot for ``device_id``."""
        return self._stats[device_id]

    def all_stats(self) -> Dict[str, DeviceStats]:
        """Latest stats for every device."""
        return dict(self._stats)

    # ----------------------------------------------------------------- drift

    def drift(self, round_index: int, memory_pressure: float = 0.3) -> Dict[str, DeviceStats]:
        """Advance the dynamic state of every device by one round.

        Each round a device's available memory fluctuates (co-located
        workloads come and go), its CPU load changes, and its effective
        bandwidth wiggles.  ``memory_pressure`` scales how much memory other
        workloads may steal (0 = none, 1 = potentially all).

        Returns the new stats snapshots keyed by device id.
        """
        require_in_range(memory_pressure, "memory_pressure", 0.0, 1.0)
        rng = self._seeds.generator("drift", round_index)
        for device_id in self.device_ids:
            profile = self._profiles[device_id]
            stolen_fraction = float(rng.uniform(0.0, memory_pressure))
            available = int(profile.memory_bytes * (1.0 - stolen_fraction))
            cpu_load = float(np.clip(rng.beta(2.0, 5.0), 0.0, 1.0))
            bandwidth = profile.bandwidth_bps * float(rng.uniform(0.7, 1.0))
            self._stats[device_id] = DeviceStats(
                device_id=device_id,
                round_index=round_index,
                available_memory_bytes=available,
                cpu_load=cpu_load,
                bandwidth_bps=bandwidth,
                battery_level=float(np.clip(1.0 - 0.01 * round_index * rng.uniform(0.5, 1.5), 0.0, 1.0)),
            )
        return dict(self._stats)

    def set_stats(self, stats: DeviceStats) -> None:
        """Overwrite one device's dynamic stats (used by failure-injection tests)."""
        if stats.device_id not in self._profiles:
            raise KeyError(f"unknown device id {stats.device_id!r}")
        self._stats[stats.device_id] = stats

    def scale_memory(self, device_id: str, factor: float) -> DeviceProfile:
        """Permanently rescale a device's memory capacity (scenario helper)."""
        require_positive(factor, "factor")
        profile = self._profiles[device_id]
        updated = replace(profile, memory_bytes=max(1, int(profile.memory_bytes * factor)))
        self._profiles[device_id] = updated
        current = self._stats[device_id]
        current.available_memory_bytes = min(current.available_memory_bytes, updated.memory_bytes)
        return updated
