"""Per-device memory accounting (the tracemalloc substitute).

The accountant tracks how many bytes each device currently has allocated to
buffered model payloads, the high-water mark, and any overflow events where a
device was asked to hold more than its capacity.  The SDFLMQ client logic
charges allocations when peer models arrive for aggregation and releases them
once the aggregate has been produced, so the high-water marks directly show
how hierarchical aggregation spreads memory load (one of the paper's claimed
benefits: "potentially save unnecessary memory allocation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.utils.validation import require_positive

__all__ = ["ResourceAccountant", "MemoryOverflowEvent"]


@dataclass(frozen=True)
class MemoryOverflowEvent:
    """One instance of a device exceeding its memory capacity."""

    device_id: str
    requested_bytes: int
    capacity_bytes: int
    in_use_bytes: int
    timestamp: float


@dataclass
class _DeviceMemory:
    capacity_bytes: int
    in_use_bytes: int = 0
    high_water_bytes: int = 0
    allocations: int = 0
    releases: int = 0


class ResourceAccountant:
    """Tracks buffered-model memory per device."""

    def __init__(self) -> None:
        self._devices: Dict[str, _DeviceMemory] = {}
        self.overflow_events: List[MemoryOverflowEvent] = []

    def register_device(self, device_id: str, capacity_bytes: int) -> None:
        """Register (or resize) a device's memory capacity."""
        require_positive(capacity_bytes, "capacity_bytes")
        existing = self._devices.get(device_id)
        if existing is None:
            self._devices[device_id] = _DeviceMemory(capacity_bytes=int(capacity_bytes))
        else:
            existing.capacity_bytes = int(capacity_bytes)

    def _require(self, device_id: str) -> _DeviceMemory:
        device = self._devices.get(device_id)
        if device is None:
            raise KeyError(f"device {device_id!r} is not registered with the resource accountant")
        return device

    def allocate(self, device_id: str, num_bytes: int, timestamp: float = 0.0) -> bool:
        """Charge ``num_bytes`` to ``device_id``.

        Returns ``True`` if the allocation fits within capacity, ``False`` if
        it overflows (the allocation is still recorded — the simulated device
        spills to storage rather than crashing, matching the cost model).
        """
        if num_bytes < 0:
            raise ValueError("cannot allocate a negative number of bytes")
        device = self._require(device_id)
        device.in_use_bytes += int(num_bytes)
        device.allocations += 1
        device.high_water_bytes = max(device.high_water_bytes, device.in_use_bytes)
        if device.in_use_bytes > device.capacity_bytes:
            self.overflow_events.append(
                MemoryOverflowEvent(
                    device_id=device_id,
                    requested_bytes=int(num_bytes),
                    capacity_bytes=device.capacity_bytes,
                    in_use_bytes=device.in_use_bytes,
                    timestamp=timestamp,
                )
            )
            return False
        return True

    def release(self, device_id: str, num_bytes: int) -> None:
        """Release ``num_bytes`` previously charged to ``device_id``."""
        if num_bytes < 0:
            raise ValueError("cannot release a negative number of bytes")
        device = self._require(device_id)
        device.in_use_bytes = max(0, device.in_use_bytes - int(num_bytes))
        device.releases += 1

    def release_all(self, device_id: str) -> None:
        """Zero out a device's in-use memory (end of round cleanup)."""
        self._require(device_id).in_use_bytes = 0

    # -------------------------------------------------------------- inspection

    def in_use(self, device_id: str) -> int:
        """Bytes currently charged to ``device_id``."""
        return self._require(device_id).in_use_bytes

    def high_water(self, device_id: str) -> int:
        """Peak bytes ever charged to ``device_id``."""
        return self._require(device_id).high_water_bytes

    def capacity(self, device_id: str) -> int:
        """Registered capacity of ``device_id``."""
        return self._require(device_id).capacity_bytes

    def overflow_count(self, device_id: str | None = None) -> int:
        """Number of overflow events (for one device or in total)."""
        if device_id is None:
            return len(self.overflow_events)
        return sum(1 for event in self.overflow_events if event.device_id == device_id)

    def high_water_by_device(self) -> Dict[str, int]:
        """High-water marks for every registered device."""
        return {device_id: memory.high_water_bytes for device_id, memory in self._devices.items()}

    def total_high_water(self) -> int:
        """Sum of per-device high-water marks (a system-wide memory-pressure proxy)."""
        return int(sum(m.high_water_bytes for m in self._devices.values()))

    def reset(self) -> None:
        """Clear usage and overflow history, keeping registered capacities."""
        for memory in self._devices.values():
            memory.in_use_bytes = 0
            memory.high_water_bytes = 0
            memory.allocations = 0
            memory.releases = 0
        self.overflow_events.clear()
