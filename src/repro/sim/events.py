"""Timestamped event log for simulated experiments.

Every meaningful action in an FL run — local training finished, model
uploaded, aggregation performed, role reassigned, global model published — is
recorded here with its simulated timestamp and duration.  The experiment
harness derives the paper's delay metrics (total processing delay per round
and per run) by reducing over this log, which also makes the benchmarks easy
to debug: the log *is* the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = ["SimEvent", "EventLog", "ChurnEvent", "ChurnSchedule", "CHURN_ACTIONS"]


@dataclass(frozen=True)
class SimEvent:
    """One event in the simulation trace."""

    timestamp: float
    kind: str
    actor: str
    duration_s: float = 0.0
    round_index: int = -1
    session_id: str = ""
    detail: str = ""

    @property
    def end_time(self) -> float:
        """Timestamp at which the event's activity completed."""
        return self.timestamp + self.duration_s


class EventLog:
    """Append-only list of :class:`SimEvent` with simple query helpers."""

    def __init__(self) -> None:
        self._events: List[SimEvent] = []

    def record(
        self,
        timestamp: float,
        kind: str,
        actor: str,
        duration_s: float = 0.0,
        round_index: int = -1,
        session_id: str = "",
        detail: str = "",
    ) -> SimEvent:
        """Append an event and return it."""
        if duration_s < 0:
            raise ValueError(f"event duration must be non-negative, got {duration_s}")
        event = SimEvent(
            timestamp=float(timestamp),
            kind=kind,
            actor=actor,
            duration_s=float(duration_s),
            round_index=int(round_index),
            session_id=session_id,
            detail=detail,
        )
        self._events.append(event)
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[SimEvent]:
        return iter(self._events)

    @property
    def events(self) -> List[SimEvent]:
        """All events in insertion order (copy)."""
        return list(self._events)

    def filter(
        self,
        kind: Optional[str] = None,
        actor: Optional[str] = None,
        round_index: Optional[int] = None,
        session_id: Optional[str] = None,
        predicate: Optional[Callable[[SimEvent], bool]] = None,
    ) -> List[SimEvent]:
        """Return events matching all the provided criteria."""
        out = []
        for event in self._events:
            if kind is not None and event.kind != kind:
                continue
            if actor is not None and event.actor != actor:
                continue
            if round_index is not None and event.round_index != round_index:
                continue
            if session_id is not None and event.session_id != session_id:
                continue
            if predicate is not None and not predicate(event):
                continue
            out.append(event)
        return out

    def kinds(self) -> Dict[str, int]:
        """Histogram of event kinds."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def total_duration(self, kind: Optional[str] = None, actor: Optional[str] = None) -> float:
        """Sum of durations over the matching events."""
        return sum(e.duration_s for e in self.filter(kind=kind, actor=actor))

    def round_span(self, round_index: int) -> float:
        """Wall span (max end time − min start time) of a round's events."""
        events = self.filter(round_index=round_index)
        if not events:
            return 0.0
        start = min(e.timestamp for e in events)
        end = max(e.end_time for e in events)
        return end - start

    def last_timestamp(self) -> float:
        """End time of the latest-finishing event (0.0 when empty)."""
        if not self._events:
            return 0.0
        return max(e.end_time for e in self._events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self._events.clear()


# --------------------------------------------------------------------- churn

#: Churn actions a schedule may contain, in the order a device typically
#: experiences them.
CHURN_ACTIONS: Tuple[str, ...] = ("join", "leave", "reconnect")


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled client lifecycle change.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the change takes effect.
    action:
        One of :data:`CHURN_ACTIONS` — ``join`` (a new client appears),
        ``leave`` (a client drops, usually ungracefully) or ``reconnect``
        (a previously dropped client comes back).
    client_id:
        The affected client.
    detail:
        Free-form annotation copied into the event log when the event fires.
    """

    time: float
    action: str
    client_id: str
    detail: str = ""

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"churn event time must be non-negative, got {self.time}")
        if self.action not in CHURN_ACTIONS:
            raise ValueError(
                f"unknown churn action {self.action!r}; expected one of {CHURN_ACTIONS}"
            )

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict form (the scenario spec's JSON representation)."""
        return {
            "time": float(self.time),
            "action": self.action,
            "client_id": self.client_id,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChurnEvent":
        """Inverse of :meth:`as_dict`; raises ``ValueError`` on bad fields."""
        unknown = set(data) - {"time", "action", "client_id", "detail"}
        if unknown:
            raise ValueError(f"unknown churn event field(s): {sorted(unknown)}")
        try:
            return cls(
                time=float(data["time"]),  # type: ignore[arg-type]
                action=str(data["action"]),
                client_id=str(data["client_id"]),
                detail=str(data.get("detail", "")),
            )
        except KeyError as exc:
            raise ValueError(f"churn event missing required field {exc}") from exc


class ChurnSchedule:
    """A time-ordered plan of client join/leave/reconnect events.

    The schedule is transport-agnostic: :meth:`bind` registers each event as a
    timed action on an :class:`~repro.runtime.scheduler.EventScheduler`, with
    the scenario supplying one handler per action kind.  Because the scheduler
    fires actions *before* deliveries due at the same instant, a client that
    leaves at time *t* never sees messages arriving at *t*.
    """

    def __init__(self, events: Optional[List[ChurnEvent]] = None) -> None:
        self._events: List[ChurnEvent] = list(events) if events else []

    def add(self, event: ChurnEvent) -> ChurnEvent:
        """Append an event to the plan and return it."""
        self._events.append(event)
        return event

    def join(self, time: float, client_id: str, detail: str = "") -> ChurnEvent:
        """Schedule a client joining at ``time``."""
        return self.add(ChurnEvent(time=float(time), action="join", client_id=client_id, detail=detail))

    def leave(self, time: float, client_id: str, detail: str = "") -> ChurnEvent:
        """Schedule a client dropping out at ``time``."""
        return self.add(ChurnEvent(time=float(time), action="leave", client_id=client_id, detail=detail))

    def reconnect(self, time: float, client_id: str, detail: str = "") -> ChurnEvent:
        """Schedule a dropped client returning at ``time``."""
        return self.add(ChurnEvent(time=float(time), action="reconnect", client_id=client_id, detail=detail))

    @property
    def events(self) -> List[ChurnEvent]:
        """The planned events sorted by time (stable for equal times)."""
        return sorted(self._events, key=lambda e: e.time)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def bind(
        self,
        scheduler: "object",
        handlers: Mapping[str, Callable[[ChurnEvent], None]],
        event_log: Optional[EventLog] = None,
    ) -> int:
        """Register every planned event as a timed scheduler action.

        ``handlers`` maps action names to callables invoked with the
        :class:`ChurnEvent` when its time arrives; actions without a handler
        raise immediately so a scenario cannot silently ignore planned churn.
        Returns the number of actions registered.
        """
        missing = {e.action for e in self._events} - set(handlers)
        if missing:
            raise KeyError(f"no handler bound for churn action(s): {sorted(missing)}")
        for event in self.events:
            handler = handlers[event.action]

            def fire(event: ChurnEvent = event, handler: Callable[[ChurnEvent], None] = handler) -> None:
                handler(event)
                if event_log is not None:
                    event_log.record(
                        timestamp=event.time,
                        kind=f"churn_{event.action}",
                        actor=event.client_id,
                        detail=event.detail,
                    )

            scheduler.call_at(event.time, fire)
        return len(self._events)
