"""Cost models converting FL work into simulated seconds.

These models provide the delay numbers behind the Fig. 8 reproduction.  They
deliberately stay simple and interpretable — each term is a linear function of
the obvious driver (samples trained, bytes moved, models aggregated) scaled by
the device's relative compute speed — plus the one non-linearity that the
paper's motivation hinges on: a *memory-overflow penalty* when an aggregator
must buffer more peer models than fit in its available memory, forcing
load/store traffic to storage (paper §III.E.6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.device import DeviceProfile
from repro.utils.validation import require_positive

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Tunable coefficients for the simulated processing-time model.

    Attributes
    ----------
    train_time_per_sample_s:
        Seconds a reference device (compute_speed = 1.0) spends on one sample
        for one epoch of the paper MLP.
    aggregate_time_per_param_s:
        Seconds per parameter per contributing model for the reduction itself.
    aggregate_fixed_s:
        Fixed per-model overhead of an aggregation (deserialize, validate).
    serialize_time_per_byte_s:
        Cost of (de)serializing a model payload on a reference device.
    overflow_penalty_factor:
        Multiplier applied to the portion of aggregation work that exceeds the
        aggregator's available memory (models spilled to storage).
    swap_bandwidth_bps:
        Throughput of the simulated storage device used when spilling.
    coordinator_decision_s:
        Time the coordinator spends computing clustering / role arrangement
        per affected client.
    """

    train_time_per_sample_s: float = 2.0e-3
    aggregate_time_per_param_s: float = 6.0e-9
    aggregate_fixed_s: float = 0.010
    serialize_time_per_byte_s: float = 1.0e-9
    overflow_penalty_factor: float = 3.0
    swap_bandwidth_bps: float = 40e6
    coordinator_decision_s: float = 0.002

    def __post_init__(self) -> None:
        require_positive(self.train_time_per_sample_s, "train_time_per_sample_s")
        require_positive(self.aggregate_time_per_param_s, "aggregate_time_per_param_s")
        require_positive(self.aggregate_fixed_s, "aggregate_fixed_s", strict=False)
        require_positive(self.serialize_time_per_byte_s, "serialize_time_per_byte_s", strict=False)
        require_positive(self.overflow_penalty_factor, "overflow_penalty_factor")
        require_positive(self.swap_bandwidth_bps, "swap_bandwidth_bps")
        require_positive(self.coordinator_decision_s, "coordinator_decision_s", strict=False)

    # -------------------------------------------------------------- training

    def training_time(
        self, device: DeviceProfile, num_samples: int, epochs: int, num_parameters: int
    ) -> float:
        """Local-training time for ``epochs`` passes over ``num_samples`` samples.

        The per-sample cost grows mildly with model size (the reference value
        is calibrated for the ~17k-parameter paper MLP).
        """
        if num_samples < 0 or epochs < 0:
            raise ValueError("num_samples and epochs must be non-negative")
        model_scale = max(0.25, num_parameters / 17_000.0)
        per_sample = self.train_time_per_sample_s * model_scale
        return epochs * num_samples * per_sample / device.compute_speed

    # ------------------------------------------------------------ aggregation

    def serialization_time(self, device: DeviceProfile, payload_bytes: int) -> float:
        """Time to serialize or deserialize one model payload on ``device``."""
        if payload_bytes < 0:
            raise ValueError("payload_bytes must be non-negative")
        return payload_bytes * self.serialize_time_per_byte_s / device.compute_speed

    def aggregation_time(
        self,
        device: DeviceProfile,
        num_models: int,
        num_parameters: int,
        payload_bytes: int,
        available_memory_bytes: int | None = None,
    ) -> float:
        """Time for ``device`` to aggregate ``num_models`` incoming models.

        When the buffered peer models do not fit in the device's available
        memory, the overflowing fraction of the work is charged at
        ``overflow_penalty_factor`` plus the time to stream the spilled bytes
        through the simulated storage device — this is the mechanism that
        makes a single central aggregator increasingly expensive as the client
        count grows (paper Fig. 8 discussion).
        """
        if num_models < 0:
            raise ValueError("num_models must be non-negative")
        if num_models == 0:
            return 0.0
        available = (
            device.memory_bytes if available_memory_bytes is None else int(available_memory_bytes)
        )
        base = (
            num_models * self.aggregate_fixed_s
            + num_models * num_parameters * self.aggregate_time_per_param_s
            + num_models * self.serialization_time(device, payload_bytes)
        ) / device.compute_speed

        required = num_models * payload_bytes
        if required <= available or required == 0:
            return base
        overflow_fraction = (required - available) / required
        spilled_bytes = required - available
        swap_time = spilled_bytes / self.swap_bandwidth_bps
        return base * (1.0 + (self.overflow_penalty_factor - 1.0) * overflow_fraction) + swap_time

    # ------------------------------------------------------------ coordination

    def coordination_time(self, num_clients_informed: int) -> float:
        """Coordinator-side time for a role (re)arrangement touching N clients."""
        if num_clients_informed < 0:
            raise ValueError("num_clients_informed must be non-negative")
        return num_clients_informed * self.coordinator_decision_s
