"""Logical simulation clock.

All simulated delays (training, aggregation, message transfer) advance this
clock explicitly; nothing in the reproduction sleeps on wall time.  The clock
is deliberately tiny — the interesting logic lives in the cost models — but it
is a distinct object so that the broker, the runtime and the event log all
observe a single consistent notion of "now".
"""

from __future__ import annotations

__all__ = ["SimulationClock"]


class SimulationClock:
    """Monotonically advancing logical clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Advance the clock by ``seconds`` (must be non-negative); returns the new time."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by a negative duration ({seconds})")
        self._now += float(seconds)
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` if it is in the future; never rewinds."""
        if timestamp > self._now:
            self._now = float(timestamp)
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (only meaningful between experiments)."""
        if start < 0:
            raise ValueError(f"start time must be non-negative, got {start}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"SimulationClock(now={self._now:.6f})"
